package core_test

import (
	"strings"
	"testing"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/geo"
	"mad/internal/model"
	"mad/internal/storage"
)

// mtState defines the Fig. 2 molecule type
// mt_state = α[mt_state, {<state-area,state,area>, <area-edge,area,edge>,
// <edge-point,edge,point>}](state, area, edge, point).
func mtState(t *testing.T, db *storage.Database) *core.MoleculeType {
	t.Helper()
	mt, err := core.Define(db, "mt_state",
		[]string{"state", "area", "edge", "point"},
		[]core.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		})
	if err != nil {
		t.Fatal(err)
	}
	return mt
}

// pointNeighborhood defines the Fig. 2 structure
// point-edge-(area-state, net-river) — the symmetric use of the links.
func pointNeighborhood(t *testing.T, db *storage.Database) *core.MoleculeType {
	t.Helper()
	mt, err := core.Define(db, "point-neighborhood",
		[]string{"point", "edge", "area", "state", "net", "river"},
		[]core.DirectedLink{
			{Link: "edge-point", From: "point", To: "edge"},
			{Link: "area-edge", From: "edge", To: "area"},
			{Link: "state-area", From: "area", To: "state"},
			{Link: "net-edge", From: "edge", To: "net"},
			{Link: "river-net", From: "net", To: "river"},
		})
	if err != nil {
		t.Fatal(err)
	}
	return mt
}

func sample(t *testing.T) *geo.Sample {
	t.Helper()
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDescValidation(t *testing.T) {
	s := sample(t)
	db := s.DB
	// Unknown atom type.
	if _, err := core.NewDesc(db, []string{"nosuch"}, nil); err == nil {
		t.Fatal("unknown type must fail")
	}
	// Unknown link type.
	if _, err := core.NewDesc(db, []string{"state", "area"},
		[]core.DirectedLink{{Link: "nosuch", From: "state", To: "area"}}); err == nil {
		t.Fatal("unknown link must fail")
	}
	// Wrong sides.
	if _, err := core.NewDesc(db, []string{"state", "edge"},
		[]core.DirectedLink{{Link: "state-area", From: "state", To: "edge"}}); err == nil {
		t.Fatal("side mismatch must fail")
	}
	// Incoherent (no edges between two types).
	if _, err := core.NewDesc(db, []string{"state", "river"}, nil); err == nil {
		t.Fatal("incoherent graph must fail")
	}
	// Duplicate type in C.
	if _, err := core.NewDesc(db, []string{"state", "state"}, nil); err == nil {
		t.Fatal("C is a set: duplicates must fail")
	}
	// Two roots: state→area and edge→point without connection.
	if _, err := core.NewDesc(db, []string{"state", "area", "edge", "point"},
		[]core.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "edge-point", From: "edge", To: "point"},
		}); err == nil {
		t.Fatal("two roots must fail")
	}
	// Valid.
	d, err := core.NewDesc(db, []string{"state", "area"},
		[]core.DirectedLink{{Link: "state-area", From: "state", To: "area"}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Root() != "state" {
		t.Fatalf("root = %q", d.Root())
	}
}

func TestDescRejectsCycle(t *testing.T) {
	s := sample(t)
	// area→edge→area is a cycle over two nodes using the same link type
	// twice — C is a set, so model it with both directions of area-edge.
	if _, err := core.NewDesc(s.DB, []string{"area", "edge"},
		[]core.DirectedLink{
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "area-edge", From: "edge", To: "area"},
		}); err == nil {
		t.Fatal("cyclic description must fail")
	}
}

func TestMtStateDerivation(t *testing.T) {
	s := sample(t)
	mt := mtState(t, s.DB)
	set, err := mt.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 10 {
		t.Fatalf("|mv| = %d, want 10 (one per state)", len(set))
	}
	if err := core.VerifySet(s.DB, set); err != nil {
		t.Fatal(err)
	}
	// Every molecule has exactly one state (the root) and one area.
	for _, m := range set {
		if len(m.AtomsOf("state")) != 1 {
			t.Fatalf("state count = %d", len(m.AtomsOf("state")))
		}
		if len(m.AtomsOf("area")) != 1 {
			t.Fatalf("area count = %d", len(m.AtomsOf("area")))
		}
		if len(m.AtomsOf("edge")) == 0 || len(m.AtomsOf("point")) == 0 {
			t.Fatal("states must have border edges and points")
		}
	}
	// Neighbouring states share border edges: the molecule set has
	// non-disjoint atom sets (Fig. 2's central claim).
	shared := set.SharedAtoms()
	if len(shared) == 0 {
		t.Fatal("expected shared subobjects between neighbouring states")
	}
	if set.DistinctAtoms() >= set.TotalAtoms() {
		t.Fatal("sharing must make distinct < total")
	}
}

func TestPointNeighborhoodSymmetricUse(t *testing.T) {
	s := sample(t)
	mt := pointNeighborhood(t, s.DB)
	dv, err := mt.Deriver()
	if err != nil {
		t.Fatal(err)
	}
	m, err := dv.DeriveFor(s.PN)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyMolecule(s.DB, m); err != nil {
		t.Fatal(err)
	}
	// Fig. 2: the pn neighborhood reaches the states SP, MS, MG, GO and
	// the river Parana.
	gotStates := make(map[string]bool)
	for _, id := range m.AtomsOf("state") {
		a, _ := s.DB.GetAtom("state", id)
		ab, _ := a.Get(1).AsString()
		gotStates[ab] = true
	}
	for _, want := range []string{"SP", "MS", "MG", "GO"} {
		if !gotStates[want] {
			t.Errorf("state %s missing from point neighborhood: %v", want, gotStates)
		}
	}
	if len(gotStates) != 4 {
		t.Errorf("states = %v, want exactly {SP, MS, MG, GO}", gotStates)
	}
	rivers := m.AtomsOf("river")
	if len(rivers) != 1 {
		t.Fatalf("rivers = %d, want 1 (Parana)", len(rivers))
	}
	a, _ := s.DB.GetAtom("river", rivers[0])
	if name, _ := a.Get(0).AsString(); name != "Parana" {
		t.Fatalf("river = %s, want Parana", name)
	}
	// Formatting marks nothing shared within a single tree path but must
	// at least render the root.
	out := m.Format(s.DB)
	if !strings.Contains(out, `"pn"`) {
		t.Fatalf("Format output missing root: %s", out)
	}
}

func TestDerivationDeterministic(t *testing.T) {
	s := sample(t)
	mt := mtState(t, s.DB)
	a, err := mt.Derive()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mt.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("non-deterministic cardinality")
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("molecule %d differs between derivations", i)
		}
		if !a[i].Equal(b[i]) {
			t.Fatalf("molecule %d not Equal between derivations", i)
		}
	}
}

func TestRestrictionAndClosure(t *testing.T) {
	s := sample(t)
	mt := pointNeighborhood(t, s.DB)
	tr := &core.OpTrace{}
	pred := expr.Cmp{Op: expr.EQ,
		L: expr.Attr{Type: "point", Name: "name"},
		R: expr.Lit(model.Str("pn"))}
	res, err := core.Restrict(mt, pred, "pn_hood", tr)
	if err != nil {
		t.Fatal(err)
	}
	set, err := res.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Fatalf("|Σ result| = %d, want 1", len(set))
	}
	if set[0].Root() != s.PN {
		t.Fatal("result rooted at wrong atom")
	}
	// Theorem 2: the result is a valid molecule type over the enlarged DB.
	if err := core.VerifySet(s.DB, set); err != nil {
		t.Fatalf("closure violated: %v", err)
	}
	// Fig. 5 anatomy: op-specific action, prop, α.
	var names []string
	for _, p := range tr.Phases {
		names = append(names, p.Name)
	}
	joined := strings.Join(names, ";")
	if !strings.Contains(joined, "restriction") || !strings.Contains(joined, "propagation") || !strings.Contains(joined, "definition") {
		t.Fatalf("trace phases = %v", names)
	}
	// The propagated occurrence re-derives to exactly the result set.
	rsv := core.MoleculeSet{set[0]}
	eq, err := core.EquivalentOccurrence(res, rsv)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("prop equivalence (Definition 9) violated")
	}
}

func TestRestrictionResultReusable(t *testing.T) {
	// Closure in action: feed a Σ result into another Σ.
	s := sample(t)
	mt := mtState(t, s.DB)
	big, err := core.Restrict(mt, expr.Cmp{Op: expr.GT,
		L: expr.Attr{Type: "state", Name: "hectare"},
		R: expr.Lit(model.Float(200))}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Count molecules with hectare > 200 by hand.
	want := 0
	for _, sd := range []float64{900, 1000, 340, 357, 46, 43, 248, 199, 95, 281} {
		if sd > 200 {
			want++
		}
	}
	if n, _ := big.Cardinality(); n != want {
		t.Fatalf("first Σ: %d molecules, want %d", n, want)
	}
	root := big.Desc().Root()
	huge, err := core.Restrict(big, expr.Cmp{Op: expr.GT,
		L: expr.Attr{Type: root, Name: "hectare"},
		R: expr.Lit(model.Float(500))}, "", nil)
	if err != nil {
		t.Fatalf("Σ over Σ result failed (closure broken): %v", err)
	}
	if n, _ := huge.Cardinality(); n != 2 { // MG 900, BA 1000
		t.Fatalf("second Σ: %d molecules, want 2", n)
	}
	set, err := huge.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySet(s.DB, set); err != nil {
		t.Fatal(err)
	}
}

func TestRestrictWithIndexEqualsRestrict(t *testing.T) {
	s := sample(t)
	if err := s.DB.CreateIndex("point", "name"); err != nil {
		t.Fatal(err)
	}
	mt := pointNeighborhood(t, s.DB)
	viaIndex, err := core.RestrictWithIndex(mt, "name", model.Str("pn"), nil, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := core.Restrict(mt, expr.Cmp{Op: expr.EQ,
		L: expr.Attr{Type: "point", Name: "name"},
		R: expr.Lit(model.Str("pn"))}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := viaIndex.Derive()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := plain.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) || len(s1) != 1 {
		t.Fatalf("index path %d vs scan path %d molecules", len(s1), len(s2))
	}
	if s1[0].Root() != s2[0].Root() {
		t.Fatal("index and scan paths disagree")
	}
}

func TestProjection(t *testing.T) {
	s := sample(t)
	mt := mtState(t, s.DB)
	res, err := core.Project(mt, core.Projection{
		Keep:  []string{"state", "area"},
		Attrs: map[string][]string{"state": {"name"}},
	}, "state_area", nil)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Desc()
	if d.NumTypes() != 2 || d.NumEdges() != 1 {
		t.Fatalf("projected structure = %s", d)
	}
	set, err := res.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 10 {
		t.Fatalf("|Π result| = %d", len(set))
	}
	if err := core.VerifySet(s.DB, set); err != nil {
		t.Fatal(err)
	}
	// The propagated state type carries only the name attribute.
	c, ok := s.DB.Container(d.Root())
	if !ok {
		t.Fatal("missing propagated root container")
	}
	if c.Desc().Len() != 1 || c.Desc().Attr(0).Name != "name" {
		t.Fatalf("projected root desc = %s", c.Desc())
	}
	// Projection must keep the root.
	if _, err := core.Project(mt, core.Projection{Keep: []string{"area", "edge"}}, "", nil); err == nil {
		t.Fatal("dropping the root must fail")
	}
	// Projection must keep coherence.
	if _, err := core.Project(mt, core.Projection{Keep: []string{"state", "edge"}}, "", nil); err == nil {
		t.Fatal("incoherent projection must fail")
	}
}

func TestProduct(t *testing.T) {
	s := sample(t)
	stateArea, err := core.Define(s.DB, "sa", []string{"state", "area"},
		[]core.DirectedLink{{Link: "state-area", From: "state", To: "area"}})
	if err != nil {
		t.Fatal(err)
	}
	riverNet, err := core.Define(s.DB, "rn", []string{"river", "net"},
		[]core.DirectedLink{{Link: "river-net", From: "river", To: "net"}})
	if err != nil {
		t.Fatal(err)
	}
	prod, err := core.Product(stateArea, riverNet, "sa_x_rn", nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := prod.Cardinality()
	if err != nil {
		t.Fatal(err)
	}
	if n != 10*3 {
		t.Fatalf("|X| = %d, want 30", n)
	}
	set, err := prod.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySet(s.DB, set); err != nil {
		t.Fatal(err)
	}
	// Each pair molecule contains one state and one river.
	for _, m := range set {
		d := m.Desc()
		types := d.Types()
		// pair root + 2 + 2 component types
		if len(types) != 5 {
			t.Fatalf("pair structure types = %v", types)
		}
		if m.Size() != 5 {
			t.Fatalf("pair molecule size = %d, want 5", m.Size())
		}
	}
}

func TestUnionDifferenceIntersection(t *testing.T) {
	s := sample(t)
	mt := mtState(t, s.DB)
	big, err := core.Restrict(mt, expr.Cmp{Op: expr.GT,
		L: expr.Attr{Type: "state", Name: "hectare"}, R: expr.Lit(model.Float(300))}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	small, err := core.Restrict(mt, expr.Cmp{Op: expr.LE,
		L: expr.Attr{Type: "state", Name: "hectare"}, R: expr.Lit(model.Float(300))}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	nBig, _ := big.Cardinality()
	nSmall, _ := small.Cardinality()
	if nBig+nSmall != 10 {
		t.Fatalf("partition broken: %d + %d", nBig, nSmall)
	}

	// Ω(big, small) = all 10.
	u, err := core.Union(big, small, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := u.Cardinality(); n != 10 {
		t.Fatalf("|Ω| = %d, want 10", n)
	}
	uset, err := u.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySet(s.DB, uset); err != nil {
		t.Fatal(err)
	}

	// Ω(big, big) = big (idempotent).
	uu, err := core.Union(big, big, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := uu.Cardinality(); n != nBig {
		t.Fatalf("Ω idempotence broken: %d vs %d", n, nBig)
	}

	// Δ(union, small) = big.
	diff, err := core.Difference(u, rebindLike(t, u, small), "", nil)
	if err == nil {
		n, _ := diff.Cardinality()
		if n != nBig {
			t.Fatalf("|Δ| = %d, want %d", n, nBig)
		}
	} else {
		// union and small have different (propagated) descriptions of the
		// same shape; compatible() accepts shape equality, so this must
		// not error.
		t.Fatalf("Δ over same-shape operands failed: %v", err)
	}

	// Δ(big, big) = ∅.
	empty, err := core.Difference(big, big, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := empty.Cardinality(); n != 0 {
		t.Fatalf("Δ(x,x) = %d molecules, want 0", n)
	}

	// Ψ(union, big) = big (Ψ = Δ(a, Δ(a,b))).
	inter, err := core.Intersect(u, big, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := inter.Cardinality(); n != nBig {
		t.Fatalf("|Ψ| = %d, want %d", n, nBig)
	}
}

// rebindLike just documents intent; Δ accepts same-shape operands.
func rebindLike(t *testing.T, _, b *core.MoleculeType) *core.MoleculeType {
	t.Helper()
	return b
}

func TestMultiParentANDSemantics(t *testing.T) {
	// Diamond: r → a, r → b, a → c, b → c. The contained predicate demands
	// a linked parent for EVERY incoming directed link type, so a c-atom
	// joins only when reached from both an a-parent and a b-parent.
	db := storage.NewDatabase()
	for _, name := range []string{"r", "a", "b", "c"} {
		if _, err := db.DefineAtomType(name, model.MustDesc(model.AttrDesc{Name: "v", Kind: model.KInt})); err != nil {
			t.Fatal(err)
		}
	}
	mustLink := func(name, x, y string) {
		t.Helper()
		if _, err := db.DefineLinkType(name, model.LinkDesc{SideA: x, SideB: y}); err != nil {
			t.Fatal(err)
		}
	}
	mustLink("ra", "r", "a")
	mustLink("rb", "r", "b")
	mustLink("ac", "a", "c")
	mustLink("bc", "b", "c")
	r, _ := db.InsertAtom("r", model.Int(0))
	a1, _ := db.InsertAtom("a", model.Int(1))
	b1, _ := db.InsertAtom("b", model.Int(2))
	cBoth, _ := db.InsertAtom("c", model.Int(3))  // linked from a and b
	cOnlyA, _ := db.InsertAtom("c", model.Int(4)) // linked from a only
	for _, c := range []struct {
		lt   string
		x, y model.AtomID
	}{{"ra", r, a1}, {"rb", r, b1}, {"ac", a1, cBoth}, {"bc", b1, cBoth}, {"ac", a1, cOnlyA}} {
		if err := db.Connect(c.lt, c.x, c.y); err != nil {
			t.Fatal(err)
		}
	}
	mt, err := core.Define(db, "diamond", []string{"r", "a", "b", "c"},
		[]core.DirectedLink{
			{Link: "ra", From: "r", To: "a"},
			{Link: "rb", From: "r", To: "b"},
			{Link: "ac", From: "a", To: "c"},
			{Link: "bc", From: "b", To: "c"},
		})
	if err != nil {
		t.Fatal(err)
	}
	set, err := mt.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Fatalf("|mv| = %d", len(set))
	}
	m := set[0]
	cs := m.AtomsOf("c")
	if len(cs) != 1 || cs[0] != cBoth {
		t.Fatalf("c components = %v, want only %v (AND semantics)", cs, cBoth)
	}
	if m.Contains("c", cOnlyA) {
		t.Fatal("cOnlyA must be excluded: it lacks a b-parent")
	}
	if err := core.VerifyMolecule(db, m); err != nil {
		t.Fatal(err)
	}
}

func TestMoleculeBindingSemantics(t *testing.T) {
	s := sample(t)
	mt := mtState(t, s.DB)
	set, err := mt.Derive()
	if err != nil {
		t.Fatal(err)
	}
	m := set[0]
	b := core.Binding{DB: s.DB, M: m}
	// Qualified reference yields one value per component atom.
	vals, err := b.Resolve("point", "name")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(m.AtomsOf("point")) {
		t.Fatalf("point.name values = %d", len(vals))
	}
	// Unqualified unique attribute resolves.
	if _, err := b.Resolve("", "hectare"); err != nil {
		t.Fatalf("unqualified hectare: %v", err)
	}
	// Ambiguous unqualified attribute errors (name is on state and point).
	if _, err := b.Resolve("", "name"); err == nil {
		t.Fatal("ambiguous attribute must fail")
	}
	// Out-of-structure type errors.
	if _, err := b.Resolve("river", "name"); err == nil {
		t.Fatal("river is not part of mt_state")
	}
	// COUNT and EXISTS through expressions.
	cnt, err := expr.CountOf{Type: "edge"}.Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := cnt[0].AsInt(); int(n) != len(m.AtomsOf("edge")) {
		t.Fatal("COUNT(edge) wrong")
	}
	ok, err := expr.EvalPredicate(expr.Exists{Type: "point"}, b)
	if err != nil || !ok {
		t.Fatal("EXISTS(point) must hold")
	}
}

func TestTraceAnatomy(t *testing.T) {
	s := sample(t)
	mt := mtState(t, s.DB)
	tr := &core.OpTrace{}
	if _, err := core.Restrict(mt, nil, "", tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Phases) < 3 {
		t.Fatalf("expected ≥3 phases (Fig. 5), got %d: %s", len(tr.Phases), tr)
	}
	if tr.Phases[0].Name != "restriction (op-specific)" {
		t.Fatalf("phase order: %v", tr.Phases[0].Name)
	}
	if !strings.Contains(tr.String(), "propagation") {
		t.Fatal("trace rendering incomplete")
	}
}
