package core

import (
	"fmt"
	"strings"
	"time"
)

// Phase is one stage of a molecule-type operation. Figure 5 of the paper
// factors every operation into operation-specific actions, the propagation
// of the result set, and a closing molecule-type definition α; traces make
// that anatomy observable (experiment F5).
type Phase struct {
	Name string
	Note string
	Dur  time.Duration
}

// OpTrace records the phases of one molecule-type operation. A nil
// *OpTrace disables tracing at zero cost.
type OpTrace struct {
	Op     string
	Phases []Phase
}

// Begin stamps the start of a phase; call the returned func to close it.
// It is exported so cooperating packages (the query planner) can record
// their phases in the same Fig. 5 anatomy.
func (t *OpTrace) Begin(name string) func(note string) {
	if t == nil {
		return func(string) {}
	}
	start := time.Now()
	return func(note string) {
		t.Phases = append(t.Phases, Phase{Name: name, Note: note, Dur: time.Since(start)})
	}
}

// SetOp records which operation the trace belongs to.
func (t *OpTrace) SetOp(op string) {
	if t != nil {
		t.Op = op
	}
}

// String renders the trace as the Fig. 5 pipeline.
func (t *OpTrace) String() string {
	if t == nil {
		return "<no trace>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", t.Op)
	for _, p := range t.Phases {
		fmt.Fprintf(&b, "  %-28s %-40s %s\n", p.Name, p.Note, p.Dur.Round(time.Microsecond))
	}
	return b.String()
}
