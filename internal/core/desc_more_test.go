package core_test

import (
	"strings"
	"testing"

	"mad/internal/core"
	"mad/internal/geo"
	"mad/internal/model"
)

func TestDescAccessorsAndRendering(t *testing.T) {
	s := sample(t)
	d, err := core.NewDesc(s.DB,
		[]string{"state", "area", "edge"},
		[]core.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
		})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTypes() != 3 || d.NumEdges() != 2 {
		t.Fatal("counts wrong")
	}
	topo := d.Topo()
	if topo[0] != "state" {
		t.Fatalf("topo = %v", topo)
	}
	if got := d.Types(); len(got) != 3 || got[0] != "state" {
		t.Fatalf("types = %v", got)
	}
	if pos, ok := d.Pos("edge"); !ok || pos != 2 {
		t.Fatalf("Pos(edge) = %d, %v", pos, ok)
	}
	if _, ok := d.Pos("river"); ok {
		t.Fatal("Pos of stranger must fail")
	}
	if len(d.Incoming("area")) != 1 || len(d.Outgoing("area")) != 1 {
		t.Fatal("adjacency wrong")
	}
	rendered := d.String()
	if !strings.Contains(rendered, "state*") {
		t.Fatalf("root not marked: %s", rendered)
	}
}

func TestDescSameShapeAndEqual(t *testing.T) {
	s := sample(t)
	mk := func(types []string, edges []core.DirectedLink) *core.Desc {
		t.Helper()
		d, err := core.NewDesc(s.DB, types, edges)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a := mk([]string{"state", "area"}, []core.DirectedLink{{Link: "state-area", From: "state", To: "area"}})
	b := mk([]string{"river", "net"}, []core.DirectedLink{{Link: "river-net", From: "river", To: "net"}})
	c := mk([]string{"state", "area", "edge"}, []core.DirectedLink{
		{Link: "state-area", From: "state", To: "area"},
		{Link: "area-edge", From: "area", To: "edge"},
	})
	if !a.SameShape(b) {
		t.Fatal("a and b are positionally isomorphic")
	}
	if a.SameShape(c) {
		t.Fatal("different sizes cannot share shape")
	}
	if a.Equal(b) {
		t.Fatal("Equal requires identical names")
	}
	a2 := mk([]string{"city", "point"}, []core.DirectedLink{{Link: "city-point", From: "city", To: "point"}})
	if !a.SameShape(a2) {
		t.Fatal("shape ignores naming")
	}
}

func TestPruneToDirect(t *testing.T) {
	s := sample(t)
	mt := mtState(t, s.DB)
	set, err := mt.Derive()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := core.NewDesc(s.DB,
		[]string{"state", "area"},
		[]core.DirectedLink{{Link: "state-area", From: "state", To: "area"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range set {
		p := m.PruneTo(sub)
		if p.Root() != m.Root() {
			t.Fatal("root changed")
		}
		if len(p.AtomsOf("area")) != len(m.AtomsOf("area")) {
			t.Fatal("area set changed")
		}
		if len(p.AtomsOf("edge")) != 0 {
			t.Fatal("pruned type leaked")
		}
		// Pruned molecules verify against the sub-description.
		if err := core.VerifyMolecule(s.DB, p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMoleculeHelpers(t *testing.T) {
	s := sample(t)
	mt := mtState(t, s.DB)
	set, err := mt.Derive()
	if err != nil {
		t.Fatal(err)
	}
	m := set[0]
	if m.Size() != len(m.AtomSet()) {
		// mt_state is a tree over distinct types; atom set equals size.
		t.Fatalf("Size %d vs AtomSet %d", m.Size(), len(m.AtomSet()))
	}
	if !m.Contains("state", m.Root()) {
		t.Fatal("root membership")
	}
	if m.Contains("state", model.MakeAtomID(99, 99)) {
		t.Fatal("phantom membership")
	}
	if m.AtomsOf("nosuch") != nil {
		t.Fatal("unknown type must yield nil")
	}
	if m.Key() == set[1].Key() {
		t.Fatal("distinct molecules share a key")
	}
	if !m.Equal(m) {
		t.Fatal("self equality")
	}
	if m.Equal(set[1]) {
		t.Fatal("distinct molecules equal")
	}
	set.SortByRoot()
	roots := set.Roots()
	for i := 1; i < len(roots); i++ {
		if roots[i-1] > roots[i] {
			t.Fatal("SortByRoot broken")
		}
	}
}

func TestEquivalentOccurrenceNegative(t *testing.T) {
	s := sample(t)
	mt := mtState(t, s.DB)
	set, err := mt.Derive()
	if err != nil {
		t.Fatal(err)
	}
	// Dropping a molecule breaks equivalence.
	ok, err := core.EquivalentOccurrence(mt, set[:len(set)-1])
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("missing molecule must break equivalence")
	}
	ok, err = core.EquivalentOccurrence(mt, set)
	if err != nil || !ok {
		t.Fatalf("full set must be equivalent: %v %v", ok, err)
	}
}

func TestProductTraceAnatomy(t *testing.T) {
	s := sample(t)
	sa, err := core.Define(s.DB, "sa", []string{"state", "area"},
		[]core.DirectedLink{{Link: "state-area", From: "state", To: "area"}})
	if err != nil {
		t.Fatal(err)
	}
	rn, err := core.Define(s.DB, "rn", []string{"river", "net"},
		[]core.DirectedLink{{Link: "river-net", From: "river", To: "net"}})
	if err != nil {
		t.Fatal(err)
	}
	tr := &core.OpTrace{}
	if _, err := core.Product(sa, rn, "", tr); err != nil {
		t.Fatal(err)
	}
	out := tr.String()
	for _, want := range []string{"product (op-specific)", "propagation (prop)", "pair root", "definition (α)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("product trace missing %q:\n%s", want, out)
		}
	}
}

func TestDeriverErrors(t *testing.T) {
	s := sample(t)
	mt := mtState(t, s.DB)
	dv, err := mt.Deriver()
	if err != nil {
		t.Fatal(err)
	}
	// Wrong-type root rejected.
	if _, err := dv.DeriveFor(s.Areas["MG"]); err == nil {
		t.Fatal("area atom is not a state root")
	}
	// Walk early stop.
	count := 0
	dv.Walk(func(*core.Molecule) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("walk stopped at %d", count)
	}
}

func TestSyntheticDerivesValidMolecules(t *testing.T) {
	syn, err := geo.BuildSynthetic(geo.Config{
		States: 8, EdgesPerArea: 2, Sharing: 3, Rivers: 2, RiverEdges: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(syn.DB, "mt_state",
		[]string{"state", "area", "edge", "point"},
		[]core.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		})
	if err != nil {
		t.Fatal(err)
	}
	set, err := mt.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySet(syn.DB, set); err != nil {
		t.Fatal(err)
	}
	if len(set.SharedAtoms()) == 0 {
		t.Fatal("sharing=3 must produce shared subobjects")
	}
}
