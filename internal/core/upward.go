package core

import (
	"fmt"

	"mad/internal/model"
)

// This file implements upward derivation: recovering the candidate roots
// of the molecules that could contain a given set of interior atoms. The
// paper's links are symmetric ("the direct representation and the
// consideration of bidirectional, i.e. symmetric links establish the
// basis of the model's flexibility", Section 2), so every directed link
// of a molecule-type description may legally be traversed against its
// declared direction. The planner uses this to enter a structure at a
// selective *interior* atom type — found through a secondary index —
// and climb to the roots, instead of scanning or indexing the root type.
//
// Root recovery is a superset operation: if an atom a is contained in
// the molecule rooted at r, then by the contained predicate there is a
// chain of component links from r down to a, so the upward walk (which
// follows the reversal of *every* edge, union semantics) reaches r from
// a. The converse does not hold — an upward path may pass through atoms
// a downward derivation would exclude (multi-parent intersection), so a
// recovered root's molecule need not contain any seed. Callers therefore
// keep the seeding predicate as a derivation-time prune hook; the
// planner's interior-index access path does exactly that.

// parents returns the atoms one step *up* edge ei from atom a — the
// reversal of partners — accounting the logical work both in the shared
// statistics and in the caller's climb counter.
func (dv *Deriver) parents(ei int, a model.AtomID, climbed *int64) []model.AtomID {
	var out []model.AtomID
	switch {
	case dv.ts != 0 && dv.fromA[ei]:
		out = dv.stores[ei].PartnersFromBAt(a, dv.ts)
	case dv.ts != 0:
		out = dv.stores[ei].PartnersFromAAt(a, dv.ts)
	case dv.fromA[ei]:
		out = dv.stores[ei].PartnersFromB(a)
	default:
		out = dv.stores[ei].PartnersFromA(a)
	}
	steps := int64(len(out)) + 1
	dv.db.Stats().LinksTraversed.Add(steps)
	*climbed += steps
	return out
}

// RecoverRoots climbs from the seed atoms of the type at position pos to
// the root type, following every incoming edge in reverse, and returns
// the de-duplicated candidate roots in ascending identifier order. The
// result is a superset of the roots whose molecules contain a seed (see
// the file comment); deriving the candidates downward with the seeding
// predicate as a prune hook yields exactly the qualifying molecules.
func (dv *Deriver) RecoverRoots(pos int, seeds []model.AtomID) ([]model.AtomID, error) {
	roots, _, err := dv.RecoverRootsCounted(pos, seeds)
	return roots, err
}

// RecoverRootsCounted is RecoverRoots reporting the number of link
// traversals the climb performed — the actual cost of the upward walk,
// which the planner's feedback store records to calibrate the climb
// weights of future access-path contests. The count is local to this
// climb, unaffected by concurrent sessions.
func (dv *Deriver) RecoverRootsCounted(pos int, seeds []model.AtomID) ([]model.AtomID, int64, error) {
	var climbed int64
	d := dv.desc
	if pos < 0 || pos >= d.NumTypes() {
		return nil, 0, fmt.Errorf("core: position %d outside the description's %d types", pos, d.NumTypes())
	}
	typeName := d.Types()[pos]
	if typeName == d.Root() {
		// Entering at the root is the identity: the seeds are the roots.
		out := append([]model.AtomID(nil), seeds...)
		model.SortAtomIDs(out)
		return dedupSorted(out), 0, nil
	}

	// Per-position reached sets, seeded at the entry position. Types are
	// climbed in reverse topological order, so when a type is processed
	// every downward path into it has already contributed its atoms.
	reached := make([]map[model.AtomID]bool, d.NumTypes())
	reached[pos] = make(map[model.AtomID]bool, len(seeds))
	for _, s := range seeds {
		reached[pos][s] = true
	}
	topo := d.Topo()
	rootPos, _ := d.Pos(d.Root())
	for i := len(topo) - 1; i >= 0; i-- {
		t := topo[i]
		tp, _ := d.Pos(t)
		if reached[tp] == nil {
			continue
		}
		for _, ei := range d.Incoming(t) {
			e := d.Edge(ei)
			fromPos, _ := d.Pos(e.From)
			for a := range reached[tp] {
				for _, p := range dv.parents(ei, a, &climbed) {
					if reached[fromPos] == nil {
						reached[fromPos] = make(map[model.AtomID]bool)
					}
					reached[fromPos][p] = true
				}
			}
		}
	}
	out := make([]model.AtomID, 0, len(reached[rootPos]))
	for r := range reached[rootPos] {
		out = append(out, r)
	}
	model.SortAtomIDs(out)
	return out, climbed, nil
}

// dedupSorted removes adjacent duplicates from a sorted identifier slice.
func dedupSorted(ids []model.AtomID) []model.AtomID {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}
