package core

import (
	"fmt"

	"mad/internal/model"
	"mad/internal/storage"
)

// Deriver synthesizes molecules: it implements the function m_dom
// (Definition 6) operationally, "using the molecule structure as a kind of
// template, which is laid over the atom networks. Thus, for each atom of
// the root atom type one molecule is derived following all links
// determined by the link types of the molecule structure to the children,
// grandchildren atoms etc. till the leaves are reached" (Section 2).
//
// The derivation realizes the recursive predicate contained: an atom
// belongs to the molecule iff it is the root, or, for *every* directed
// link type arriving at its atom type, some already-contained parent atom
// links to it. Nodes with a single incoming edge therefore follow plain
// hierarchical-join semantics; nodes with several incoming edges take the
// intersection of their parents' partner sets.
type Deriver struct {
	db   *storage.Database
	desc *Desc

	stores []*storage.LinkStore // per edge
	fromA  []bool               // per edge: true when edge.From is the link type's side A
	roots  *storage.Container

	// ts pins every read — root occurrence and link traversals — to one
	// commit timestamp; zero reads the latest published view. Pinned
	// derivers come from AtSnapshot and make a whole derivation run
	// consistent with exactly one commit, no matter how many writers
	// commit while it streams.
	ts uint64

	// view, when non-nil, redirects every read through an AtomView — an
	// alternative consistent read surface such as a transaction's
	// effective view (begin snapshot plus its own buffered writes). It
	// takes precedence over ts.
	view AtomView
}

// AtomView is an alternative read surface for derivation: a consistent
// effective view — e.g. a transaction's begin snapshot with its own
// buffered writes merged over it (storage.Txn) — that the deriver lays
// the structure template over instead of the committed store.
type AtomView interface {
	// EffIDs enumerates the type's effective occurrence in a
	// deterministic order.
	EffIDs(typeName string) []model.AtomID
	// EffAtom resolves one atom through the view.
	EffAtom(typeName string, id model.AtomID) (model.Atom, bool)
	// EffPartners returns the partners of id along the named link type,
	// from side A when fromSideA is set (the side-B view otherwise).
	EffPartners(linkName string, id model.AtomID, fromSideA bool) []model.AtomID
}

// NewDeriver prepares a derivation plan for the description: it resolves
// every edge's link store and traversal orientation once.
func NewDeriver(db *storage.Database, desc *Desc) (*Deriver, error) {
	dv := &Deriver{
		db:     db,
		desc:   desc,
		stores: make([]*storage.LinkStore, desc.NumEdges()),
		fromA:  make([]bool, desc.NumEdges()),
	}
	for i, e := range desc.Edges() {
		ls, ok := db.LinkStore(e.Link)
		if !ok {
			return nil, fmt.Errorf("core: link type %q has no store", e.Link)
		}
		dv.stores[i] = ls
		dv.fromA[i] = ls.Desc().SideA == e.From
	}
	c, ok := db.Container(desc.Root())
	if !ok {
		return nil, fmt.Errorf("core: root atom type %q has no container", desc.Root())
	}
	dv.roots = c
	return dv, nil
}

// AtSnapshot returns a copy of the deriver pinned to the snapshot's
// commit timestamp: every root lookup and link traversal resolves
// against that timestamp, so the derivation can never observe a torn
// molecule while writers commit concurrently. The copy shares the
// resolved stores and containers — pinning is free. The snapshot must
// stay open (un-Closed) for the lifetime of the pinned deriver, since
// it is what holds vacuum back from the pinned versions.
func (dv *Deriver) AtSnapshot(s *storage.Snapshot) *Deriver { return dv.AtTS(s.TS()) }

// AtTS is AtSnapshot for an already-pinned timestamp; ts zero returns a
// deriver reading the latest published view. Callers are responsible for
// keeping a snapshot registered at ts while the deriver is in use.
func (dv *Deriver) AtTS(ts uint64) *Deriver {
	if ts == dv.ts {
		return dv
	}
	cp := *dv
	cp.ts = ts
	return &cp
}

// TS reports the commit timestamp the deriver is pinned to (zero =
// latest view).
func (dv *Deriver) TS() uint64 { return dv.ts }

// AtView returns a copy of the deriver reading every root occurrence
// and link traversal through the view instead of the committed store —
// the read-your-writes derivation path: laying the template over a
// transaction's effective view derives molecules that include the
// transaction's own uncommitted inserts, updates and connects. The view
// must stay valid (the transaction unfinished) for the lifetime of the
// returned deriver.
func (dv *Deriver) AtView(v AtomView) *Deriver {
	cp := *dv
	cp.view = v
	return &cp
}

// rootHas, rootLen, rootIDs and rootScan dispatch the root-occurrence
// reads on the pin: the effective view when one is attached, the latest
// head view when unpinned, the snapshot view at dv.ts otherwise.
func (dv *Deriver) rootHas(id model.AtomID) bool {
	if dv.view != nil {
		_, ok := dv.view.EffAtom(dv.desc.Root(), id)
		return ok
	}
	if dv.ts != 0 {
		return dv.roots.HasAt(id, dv.ts)
	}
	return dv.roots.Has(id)
}

func (dv *Deriver) rootLen() int {
	if dv.view != nil {
		return len(dv.view.EffIDs(dv.desc.Root()))
	}
	if dv.ts != 0 {
		return dv.roots.LenAt(dv.ts)
	}
	return dv.roots.Len()
}

func (dv *Deriver) rootIDs() []model.AtomID {
	if dv.view != nil {
		return dv.view.EffIDs(dv.desc.Root())
	}
	if dv.ts != 0 {
		return dv.roots.IDsAt(dv.ts)
	}
	return dv.roots.IDs()
}

func (dv *Deriver) rootScan(fn func(model.Atom) bool) {
	if dv.view != nil {
		// Derivation only consumes the identifier; synthesizing a bare
		// atom per id keeps the view interface narrow.
		for _, id := range dv.view.EffIDs(dv.desc.Root()) {
			if !fn(model.Atom{ID: id}) {
				return
			}
		}
		return
	}
	if dv.ts != 0 {
		dv.roots.ScanAt(dv.ts, fn)
		return
	}
	dv.roots.Scan(fn)
}

// partners returns the children of atom a along edge ei, honouring the
// edge's traversal orientation and the deriver's pin, and accounts the
// logical work: into the scratch tally when sc is non-nil (flushed to
// the shared stats once per batch), directly into the shared atomic
// counters otherwise.
func (dv *Deriver) partners(ei int, a model.AtomID, sc *deriveScratch) []model.AtomID {
	var out []model.AtomID
	switch {
	case dv.view != nil:
		out = dv.view.EffPartners(dv.stores[ei].Name(), a, dv.fromA[ei])
	case dv.ts != 0 && dv.fromA[ei]:
		out = dv.stores[ei].PartnersFromAAt(a, dv.ts)
	case dv.ts != 0:
		out = dv.stores[ei].PartnersFromBAt(a, dv.ts)
	case dv.fromA[ei]:
		out = dv.stores[ei].PartnersFromA(a)
	default:
		out = dv.stores[ei].PartnersFromB(a)
	}
	if sc != nil {
		sc.work.LinksTraversed += int64(len(out)) + 1
	} else {
		dv.db.Stats().LinksTraversed.Add(int64(len(out)) + 1)
	}
	return out
}

// deriveScratch is per-worker scratch for derivation-heavy loops: a free
// list of recycled molecules (pruned or rejected ones never escape the
// worker, so their slices and maps are reusable), reusable candidate
// sets for the per-type intersection, and a local work tally flushed to
// the shared stats once per batch — the derive hot path then performs no
// atomic operation per atom or link.
type deriveScratch struct {
	free []*Molecule
	cand map[model.AtomID]bool
	tmp  map[model.AtomID]bool
	work storage.WorkTally
}

func newDeriveScratch() *deriveScratch {
	return &deriveScratch{
		cand: make(map[model.AtomID]bool),
		tmp:  make(map[model.AtomID]bool),
	}
}

// take returns a molecule for the root, recycling a retired one when
// available.
func (sc *deriveScratch) take(d *Desc, root model.AtomID) *Molecule {
	if n := len(sc.free); n > 0 {
		m := sc.free[n-1]
		sc.free = sc.free[:n-1]
		m.reset(d, root)
		return m
	}
	return newMolecule(d, root)
}

// recycle retires a molecule that never left the worker.
func (sc *deriveScratch) recycle(m *Molecule) { sc.free = append(sc.free, m) }

// flush folds the scratch tally into the shared statistics.
func (sc *deriveScratch) flush(db *storage.Database) { sc.work.FlushTo(db.Stats()) }

// PruneCheck is a derivation-time pushdown hook: once the component set
// of the atom type at position Pos is complete (derivation fills types in
// topological order, so completion is well defined), Qualifies decides
// whether the molecule can still satisfy the query. When it returns false
// the molecule is discarded on the spot and the subtree below that type
// is never traversed — restriction conjuncts referencing a single atom
// type cut work during m_dom instead of post-filtering whole molecules.
// Surviving molecules are derived in full, so a pruned derivation returns
// exactly the molecules of the unpruned one that pass every check.
type PruneCheck struct {
	Pos       int
	Qualifies func(atoms []model.AtomID) bool
}

// PreparedChecks is the per-position layout of prune hooks, computed
// once and reused across every root of a derivation.
type PreparedChecks []func([]model.AtomID) bool

// PrepareChecks lays the hooks out per type position for O(1) access
// during derivation. Several checks on the same position conjoin: each
// keeps its own aggregation over the completed component set (two
// existential conjuncts on one type are NOT one existential conjunct
// over their AND).
func (dv *Deriver) PrepareChecks(checks []PruneCheck) PreparedChecks {
	if len(checks) == 0 {
		return nil
	}
	out := make(PreparedChecks, dv.desc.NumTypes())
	for _, c := range checks {
		if c.Pos < 0 || c.Pos >= len(out) {
			continue
		}
		if prev := out[c.Pos]; prev != nil {
			q := c.Qualifies
			out[c.Pos] = func(atoms []model.AtomID) bool {
				return prev(atoms) && q(atoms)
			}
		} else {
			out[c.Pos] = c.Qualifies
		}
	}
	return out
}

// DeriveFor synthesizes the single molecule rooted at the given atom,
// which must belong to the root type's occurrence.
func (dv *Deriver) DeriveFor(root model.AtomID) (*Molecule, error) {
	if !dv.rootHas(root) {
		return nil, fmt.Errorf("core: atom %v is not in root type %q", root, dv.desc.Root())
	}
	return dv.derive(root), nil
}

// DeriveForPruned is DeriveFor with pushdown hooks; ok=false reports that
// a hook cut the molecule. Callers deriving many roots should prepare the
// hooks once and use DeriveForPrepared.
func (dv *Deriver) DeriveForPruned(root model.AtomID, checks []PruneCheck) (*Molecule, bool, error) {
	return dv.DeriveForPrepared(root, dv.PrepareChecks(checks))
}

// DeriveForPrepared is DeriveForPruned over an already-prepared hook
// layout, avoiding the per-root preparation cost.
func (dv *Deriver) DeriveForPrepared(root model.AtomID, pc PreparedChecks) (*Molecule, bool, error) {
	if !dv.rootHas(root) {
		return nil, false, fmt.Errorf("core: atom %v is not in root type %q", root, dv.desc.Root())
	}
	m := dv.derivePruned(root, pc)
	return m, m != nil, nil
}

// derive runs the template over the atom network below one root atom.
func (dv *Deriver) derive(root model.AtomID) *Molecule {
	return dv.derivePruned(root, nil)
}

// derivePruned runs the template below one root atom, aborting as soon as
// a prune hook disqualifies the molecule. It returns nil when pruned.
func (dv *Deriver) derivePruned(root model.AtomID, byPos PreparedChecks) *Molecule {
	return dv.deriveScratched(root, byPos, nil)
}

// deriveScratched is derivePruned with optional per-worker scratch: with
// sc non-nil, pruned molecules are recycled, the candidate sets are
// reused across types and roots, and the logical-work accounting stays in
// the scratch tally instead of hitting the shared atomic counters per
// atom. A nil sc reproduces the plain allocation behaviour.
func (dv *Deriver) deriveScratched(root model.AtomID, byPos PreparedChecks, sc *deriveScratch) *Molecule {
	d := dv.desc
	var m *Molecule
	if sc != nil {
		m = sc.take(d, root)
	} else {
		m = newMolecule(d, root)
	}
	rootPos, _ := d.Pos(d.Root())
	m.addAtom(rootPos, root)
	if sc != nil {
		sc.work.AtomsFetched++
	} else {
		dv.db.Stats().AtomsFetched.Add(1)
	}
	if byPos != nil && byPos[rootPos] != nil && !byPos[rootPos](m.atoms[rootPos]) {
		if sc != nil {
			sc.recycle(m)
		}
		return nil
	}

	for _, t := range d.Topo() {
		if t == d.Root() {
			continue
		}
		pos, _ := d.Pos(t)
		inc := d.Incoming(t)

		// Candidate component atoms: the intersection over all incoming
		// directed link types of the parents' partner sets (contained).
		var cand map[model.AtomID]bool
		for k, ei := range inc {
			e := d.Edge(ei)
			fromPos, _ := d.Pos(e.From)
			var s map[model.AtomID]bool
			switch {
			case sc != nil && k == 0:
				clear(sc.cand)
				s = sc.cand
			case sc != nil:
				clear(sc.tmp)
				s = sc.tmp
			default:
				s = make(map[model.AtomID]bool)
			}
			for _, pa := range m.atoms[fromPos] {
				for _, p := range dv.partners(ei, pa, sc) {
					s[p] = true
				}
			}
			if k == 0 {
				cand = s
				continue
			}
			for id := range cand {
				if !s[id] {
					delete(cand, id)
				}
			}
		}

		// Record atoms in deterministic first-reached order and all
		// component links between contained parents and contained children
		// (g is maximal for the atoms selected).
		for _, ei := range inc {
			e := d.Edge(ei)
			fromPos, _ := d.Pos(e.From)
			for _, pa := range m.atoms[fromPos] {
				for _, p := range dv.partners(ei, pa, sc) {
					if !cand[p] {
						continue
					}
					m.addAtom(pos, p)
					m.addLink(ei, model.Link{A: pa, B: p})
				}
			}
		}
		if sc != nil {
			sc.work.AtomsFetched += int64(len(m.atoms[pos]))
		} else {
			dv.db.Stats().AtomsFetched.Add(int64(len(m.atoms[pos])))
		}
		if byPos != nil && byPos[pos] != nil && !byPos[pos](m.atoms[pos]) {
			if sc != nil {
				sc.recycle(m)
			}
			return nil
		}
	}
	return m
}

// RootIDs returns the root-type occurrence's identifiers in insertion
// order — the full root batch of a scan-based derivation.
func (dv *Deriver) RootIDs() []model.AtomID { return dv.rootIDs() }

// Derive materializes the full molecule-type occurrence: one molecule per
// atom of the root type, in the root container's insertion order.
func (dv *Deriver) Derive() MoleculeSet {
	out := make(MoleculeSet, 0, dv.rootLen())
	dv.rootScan(func(a model.Atom) bool {
		out = append(out, dv.derive(a.ID))
		return true
	})
	return out
}

// DeriveRoots materializes the molecules for the given root atoms only —
// the entry point for index-assisted restriction pushdown.
func (dv *Deriver) DeriveRoots(roots []model.AtomID) (MoleculeSet, error) {
	out := make(MoleculeSet, 0, len(roots))
	for _, r := range roots {
		m, err := dv.DeriveFor(r)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Walk streams molecules one root at a time without materializing the
// whole occurrence; fn returning false stops the walk.
func (dv *Deriver) Walk(fn func(*Molecule) bool) {
	dv.rootScan(func(a model.Atom) bool {
		return fn(dv.derive(a.ID))
	})
}

// WalkPruned streams the molecules surviving the pushdown hooks; pruned
// molecules never reach fn (their subtrees were never traversed). fn
// returning false stops the walk.
func (dv *Deriver) WalkPruned(checks []PruneCheck, fn func(*Molecule) bool) {
	byPos := dv.PrepareChecks(checks)
	dv.rootScan(func(a model.Atom) bool {
		m := dv.derivePruned(a.ID, byPos)
		if m == nil {
			return true
		}
		return fn(m)
	})
}
