package core_test

import (
	"testing"

	"mad/internal/core"
	"mad/internal/geo"
	"mad/internal/model"
)

func TestDeriveParallelEqualsSequential(t *testing.T) {
	syn, err := geo.BuildSynthetic(geo.Config{
		States: 64, EdgesPerArea: 3, Sharing: 2, Rivers: 4, RiverEdges: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(syn.DB, "mt_state",
		[]string{"state", "area", "edge", "point"},
		[]core.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		})
	if err != nil {
		t.Fatal(err)
	}
	dv, err := mt.Deriver()
	if err != nil {
		t.Fatal(err)
	}
	seq := dv.Derive()
	for _, workers := range []int{0, 1, 2, 4, 8} {
		par := dv.DeriveParallel(workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d vs %d molecules", workers, len(par), len(seq))
		}
		for i := range seq {
			if !seq[i].Equal(par[i]) {
				t.Fatalf("workers=%d: molecule %d differs", workers, i)
			}
		}
	}
}

func TestDeriveRootsParallel(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(s.DB, "mt_state",
		[]string{"state", "area", "edge", "point"},
		[]core.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		})
	if err != nil {
		t.Fatal(err)
	}
	dv, err := mt.Deriver()
	if err != nil {
		t.Fatal(err)
	}
	roots := []struct{ ab string }{{"MG"}, {"SP"}, {"RS"}}
	ids := make([]model.AtomID, 0, len(roots))
	for _, r := range roots {
		ids = append(ids, s.States[r.ab])
	}
	want, err := dv.DeriveRoots(ids)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dv.DeriveRootsParallel(ids, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d vs %d", len(got), len(want))
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("molecule %d differs", i)
		}
	}
	// Unknown root errors in both paths.
	if _, err := dv.DeriveRootsParallel([]model.AtomID{0}, 4); err == nil {
		t.Fatal("invalid root must fail")
	}
}
