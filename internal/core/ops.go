package core

import (
	"fmt"

	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/storage"
)

// Restrict is the molecule-type restriction Σ[restr(md)](mt)
// (Definition 10): it derives mv, keeps the molecules fulfilling the
// qualification formula, and propagates the result set into the enlarged
// database, closing with α. A nil predicate keeps every molecule.
func Restrict(mt *MoleculeType, pred expr.Expr, resultName string, tr *OpTrace) (*MoleculeType, error) {
	tr.SetOp(fmt.Sprintf("Σ[%s](%s)", exprString(pred), mt.Name()))
	if err := expr.Check(pred, Scope{DB: mt.db, Desc: mt.desc}); err != nil {
		return nil, err
	}
	done := tr.Begin("restriction (op-specific)")
	dv, err := mt.Deriver()
	if err != nil {
		return nil, err
	}
	var rsv MoleculeSet
	var evalErr error
	total := 0
	dv.Walk(func(m *Molecule) bool {
		total++
		ok, err := expr.EvalPredicate(pred, Binding{DB: mt.db, M: m})
		if err != nil {
			evalErr = err
			return false
		}
		if ok {
			rsv = append(rsv, m)
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	done(fmt.Sprintf("qualified %d of %d molecules", len(rsv), total))
	res, err := Prop(mt.db, resultName, mt.desc, rsv, nil, tr)
	if err != nil {
		return nil, err
	}
	return res.Type, nil
}

// RestrictWithIndex is Restrict with root-restriction pushdown: when an
// equality predicate on the root type's indexed attribute is supplied,
// only the matching root atoms are derived. The result is identical to
// Restrict; only the work differs (the optimization the paper anticipates
// for query processing, Chapter 5). The query planner (package plan)
// generalizes this single access path into full plans — index selection
// by cardinality, root filters, per-atom-type pushdown during
// derivation; new callers should prefer plan.Restrict.
func RestrictWithIndex(mt *MoleculeType, attr string, value model.Value, rest expr.Expr, resultName string, tr *OpTrace) (*MoleculeType, error) {
	tr.SetOp(fmt.Sprintf("Σ[%s.%s=%s ∧ …](%s) via index", mt.desc.Root(), attr, value, mt.Name()))
	done := tr.Begin("restriction (index-assisted)")
	roots, ok := mt.db.IndexLookup(mt.desc.Root(), attr, value)
	if !ok {
		done("no index; falling back to full derivation")
		pred := combinePred(expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: mt.desc.Root(), Name: attr}, R: expr.Lit(value)}, rest)
		return Restrict(mt, pred, resultName, tr)
	}
	dv, err := mt.Deriver()
	if err != nil {
		return nil, err
	}
	candidates, err := dv.DeriveRoots(roots)
	if err != nil {
		return nil, err
	}
	var rsv MoleculeSet
	for _, m := range candidates {
		ok, err := expr.EvalPredicate(rest, Binding{DB: mt.db, M: m})
		if err != nil {
			return nil, err
		}
		if ok {
			rsv = append(rsv, m)
		}
	}
	done(fmt.Sprintf("index narrowed to %d roots, %d qualified", len(roots), len(rsv)))
	res, err := Prop(mt.db, resultName, mt.desc, rsv, nil, tr)
	if err != nil {
		return nil, err
	}
	return res.Type, nil
}

// combinePred conjoins two optional predicates.
func combinePred(a, b expr.Expr) expr.Expr {
	if b == nil {
		return a
	}
	if a == nil {
		return b
	}
	return expr.And{L: a, R: b}
}

func exprString(e expr.Expr) string {
	if e == nil {
		return "true"
	}
	return e.String()
}

// Projection describes a molecule-type projection Π: Keep lists the atom
// types to retain (they must include the root and induce a coherent
// sub-description); Attrs optionally narrows each kept type to the named
// attributes (nil entry or missing key = all attributes).
type Projection struct {
	Keep  []string
	Attrs map[string][]string
}

// Project is the molecule-type projection Π (Definition 10's list; the
// paper defers the definition to [Mi88a] and notes the operations "are
// mostly defined using the molecule-type propagation and the atom-type
// operations"). Π prunes the molecule structure to the kept subgraph and
// narrows component descriptions, preserving atom identity — duplicate
// elimination is an atom-type-level (π) concern, not a molecule-level one.
func Project(mt *MoleculeType, p Projection, resultName string, tr *OpTrace) (*MoleculeType, error) {
	tr.SetOp(fmt.Sprintf("Π[%v](%s)", p.Keep, mt.Name()))
	done := tr.Begin("projection (op-specific)")
	keep := make(map[string]bool, len(p.Keep))
	for _, t := range p.Keep {
		if !mt.desc.HasType(t) {
			return nil, fmt.Errorf("core: Π: type %q is not part of %s", t, mt.desc)
		}
		keep[t] = true
	}
	if !keep[mt.desc.Root()] {
		return nil, fmt.Errorf("core: Π: projection must keep the root type %q", mt.desc.Root())
	}
	// Induced sub-description, preserving declaration order.
	var subTypes []string
	for _, t := range mt.desc.Types() {
		if keep[t] {
			subTypes = append(subTypes, t)
		}
	}
	var subEdges []DirectedLink
	keptEdge := make([]int, 0) // original edge index per kept edge
	for ei, e := range mt.desc.Edges() {
		if keep[e.From] && keep[e.To] {
			subEdges = append(subEdges, e)
			keptEdge = append(keptEdge, ei)
		}
	}
	rsd, err := NewDesc(mt.db, subTypes, subEdges)
	if err != nil {
		return nil, fmt.Errorf("core: Π: induced structure invalid: %w", err)
	}
	// Re-derive over the pruned structure so component sets follow the
	// pruned containment semantics exactly.
	dv, err := NewDeriver(mt.db, rsd)
	if err != nil {
		return nil, err
	}
	rsv := dv.Derive()
	done(fmt.Sprintf("kept %d/%d types, %d/%d edges", len(subTypes), mt.desc.NumTypes(), len(subEdges), mt.desc.NumEdges()))
	_ = keptEdge
	res, err := Prop(mt.db, resultName, rsd, rsv, p.Attrs, tr)
	if err != nil {
		return nil, err
	}
	return res.Type, nil
}

// Product is the molecule-type cartesian product X(mt1, mt2). The paper
// defers its definition to [Mi88a]; the concretization here follows the
// prop-then-α pattern: both operand occurrences are propagated, a fresh
// pair root type (carrying the two root identifiers as attributes) is
// created, and each pair molecule connects one molecule of mv1 with one of
// mv2 — |mv1| × |mv2| result molecules.
func Product(mt1, mt2 *MoleculeType, resultName string, tr *OpTrace) (*MoleculeType, error) {
	tr.SetOp(fmt.Sprintf("X(%s, %s)", mt1.Name(), mt2.Name()))
	if mt1.db != mt2.db {
		return nil, fmt.Errorf("core: X: operands live in different databases")
	}
	db := mt1.db
	done := tr.Begin("product (op-specific)")
	mv1, err := mt1.Derive()
	if err != nil {
		return nil, err
	}
	mv2, err := mt2.Derive()
	if err != nil {
		return nil, err
	}
	done(fmt.Sprintf("|mv1|=%d × |mv2|=%d", len(mv1), len(mv2)))

	p1, err := Prop(db, "", mt1.desc, mv1, nil, tr)
	if err != nil {
		return nil, err
	}
	p2, err := Prop(db, "", mt2.desc, mv2, nil, tr)
	if err != nil {
		return nil, err
	}

	doneRoot := tr.Begin("product (pair root)")
	pairDesc := model.MustDesc(
		model.AttrDesc{Name: "left", Kind: model.KID, NotNull: true},
		model.AttrDesc{Name: "right", Kind: model.KID, NotNull: true},
	)
	pairName := db.Schema().FreshAtomName("pair")
	if _, err := db.DefineAtomType(pairName, pairDesc); err != nil {
		return nil, err
	}
	d1, d2 := p1.Type.Desc(), p2.Type.Desc()
	leftRoot, rightRoot := d1.Root(), d2.Root()
	leftLink := db.Schema().FreshLinkName("pair_left")
	if _, err := db.DefineLinkType(leftLink, model.LinkDesc{SideA: pairName, SideB: leftRoot}); err != nil {
		return nil, err
	}
	rightLink := db.Schema().FreshLinkName("pair_right")
	if _, err := db.DefineLinkType(rightLink, model.LinkDesc{SideA: pairName, SideB: rightRoot}); err != nil {
		return nil, err
	}
	for _, m1 := range mv1 {
		for _, m2 := range mv2 {
			pid, err := db.InsertAtom(pairName, model.ID(m1.Root()), model.ID(m2.Root()))
			if err != nil {
				return nil, err
			}
			if err := db.Connect(leftLink, pid, m1.Root()); err != nil {
				return nil, err
			}
			if err := db.Connect(rightLink, pid, m2.Root()); err != nil {
				return nil, err
			}
		}
	}
	types := append([]string{pairName}, d1.Types()...)
	types = append(types, d2.Types()...)
	edges := []DirectedLink{
		{Link: leftLink, From: pairName, To: leftRoot},
		{Link: rightLink, From: pairName, To: rightRoot},
	}
	edges = append(edges, d1.Edges()...)
	edges = append(edges, d2.Edges()...)
	doneRoot(fmt.Sprintf("%d pair atoms", len(mv1)*len(mv2)))

	doneAlpha := tr.Begin("definition (α)")
	mtx, err := Define(db, resultName, types, edges)
	if err != nil {
		return nil, err
	}
	doneAlpha("pair-rooted structure")
	return mtx, nil
}

// compatible checks the operand compatibility Ω and Δ require: positionally
// isomorphic descriptions whose corresponding atom types carry equal
// attribute descriptions (the molecule analogue of ad1 = ad2 in
// Definition 4).
func compatible(mt1, mt2 *MoleculeType) error {
	if mt1.db != mt2.db {
		return fmt.Errorf("core: operands live in different databases")
	}
	if !mt1.desc.SameShape(mt2.desc) {
		return fmt.Errorf("core: molecule structures differ: %s vs %s", mt1.desc, mt2.desc)
	}
	t1, t2 := mt1.desc.Types(), mt2.desc.Types()
	for i := range t1 {
		c1, ok1 := mt1.db.Container(t1[i])
		c2, ok2 := mt2.db.Container(t2[i])
		if !ok1 || !ok2 {
			return fmt.Errorf("core: missing container for %q or %q", t1[i], t2[i])
		}
		if !c1.Desc().Equal(c2.Desc()) {
			return fmt.Errorf("core: component types %q and %q have different descriptions", t1[i], t2[i])
		}
	}
	return nil
}

// Union is the molecule-type union Ω(mt1, mt2): the set union of the two
// occurrences over compatible descriptions, molecules compared by
// component identity, propagated and closed with α.
func Union(mt1, mt2 *MoleculeType, resultName string, tr *OpTrace) (*MoleculeType, error) {
	tr.SetOp(fmt.Sprintf("Ω(%s, %s)", mt1.Name(), mt2.Name()))
	if err := compatible(mt1, mt2); err != nil {
		return nil, err
	}
	done := tr.Begin("union (op-specific)")
	mv1, err := mt1.Derive()
	if err != nil {
		return nil, err
	}
	mv2, err := mt2.Derive()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(mv1))
	rsv := make(MoleculeSet, 0, len(mv1)+len(mv2))
	for _, m := range mv1 {
		seen[m.Key()] = true
		rsv = append(rsv, m)
	}
	dups := 0
	for _, m := range mv2 {
		if seen[m.Key()] {
			dups++
			continue
		}
		// mv2's molecules keep their own (same-shaped) description; Prop
		// resolves their atoms positionally.
		rsv = append(rsv, m)
	}
	done(fmt.Sprintf("|mv1|=%d ∪ |mv2|=%d (%d duplicates)", len(mv1), len(mv2), dups))
	res, err := Prop(mt1.db, resultName, mt1.desc, rsv, nil, tr)
	if err != nil {
		return nil, err
	}
	return res.Type, nil
}

// Difference is the molecule-type difference Δ(mt1, mt2): the molecules of
// mv1 with no equal molecule in mv2, compared by component identity.
func Difference(mt1, mt2 *MoleculeType, resultName string, tr *OpTrace) (*MoleculeType, error) {
	tr.SetOp(fmt.Sprintf("Δ(%s, %s)", mt1.Name(), mt2.Name()))
	if err := compatible(mt1, mt2); err != nil {
		return nil, err
	}
	done := tr.Begin("difference (op-specific)")
	mv1, err := mt1.Derive()
	if err != nil {
		return nil, err
	}
	mv2, err := mt2.Derive()
	if err != nil {
		return nil, err
	}
	drop := make(map[string]bool, len(mv2))
	for _, m := range mv2 {
		drop[m.Key()] = true
	}
	var rsv MoleculeSet
	for _, m := range mv1 {
		if !drop[m.Key()] {
			rsv = append(rsv, m)
		}
	}
	done(fmt.Sprintf("|mv1|=%d − |mv2|=%d → %d", len(mv1), len(mv2), len(rsv)))
	res, err := Prop(mt1.db, resultName, mt1.desc, rsv, nil, tr)
	if err != nil {
		return nil, err
	}
	return res.Type, nil
}

// Intersect is the derived molecule-type intersection
// Ψ(mt1, mt2) = Δ(mt1, Δ(mt1, mt2)) — built, exactly as the paper builds
// it, from two applications of the difference (Theorem 3 commentary).
func Intersect(mt1, mt2 *MoleculeType, resultName string, tr *OpTrace) (*MoleculeType, error) {
	inner, err := Difference(mt1, mt2, "", tr)
	if err != nil {
		return nil, err
	}
	out, err := Difference(mt1, inner, resultName, tr)
	if err != nil {
		return nil, err
	}
	tr.SetOp(fmt.Sprintf("Ψ(%s, %s) = Δ(%s, Δ(%s, %s))",
		mt1.Name(), mt2.Name(), mt1.Name(), mt1.Name(), mt2.Name()))
	return out, nil
}

// rebind reinterprets a molecule positionally under another same-shaped
// description (no copying of atoms or links).
func rebind(m *Molecule, d *Desc) *Molecule {
	out := &Molecule{
		desc:   d,
		root:   m.root,
		atoms:  m.atoms,
		links:  m.links,
		member: m.member,
	}
	return out
}

// Derived helper: EquivalentOccurrence reports whether re-deriving mt's
// occurrence yields exactly the given molecule set — the equivalence
// Definition 9 promises ("for each element within rsv there is exactly one
// equivalent molecule within mv and vice versa"). Molecules are compared
// positionally. It backs the closure property tests of Theorems 2–3.
func EquivalentOccurrence(mt *MoleculeType, want MoleculeSet) (bool, error) {
	got, err := mt.Derive()
	if err != nil {
		return false, err
	}
	if len(got) != len(want) {
		return false, nil
	}
	index := make(map[string]*Molecule, len(want))
	for _, m := range want {
		index[m.Key()] = m
	}
	for _, g := range got {
		w, ok := index[g.Key()]
		if !ok {
			return false, nil
		}
		if !g.Equal(rebind(w, g.desc)) {
			return false, nil
		}
	}
	return true, nil
}

// Ensure storage import is used even if future refactors drop direct uses.
var _ = storage.StatsSnapshot{}
