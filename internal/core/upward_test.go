package core_test

import (
	"testing"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/storage"
)

// diamondDB builds a database whose molecule structure is a diamond
// r → (x, y) → z: z has two incoming edges, so downward derivation takes
// the intersection of its parents' partner sets while upward recovery
// unions them — the shape where root recovery genuinely over-approximates.
func diamondDB(t *testing.T) (*storage.Database, *core.Desc) {
	t.Helper()
	db := storage.NewDatabase()
	desc := model.MustDesc(model.AttrDesc{Name: "v", Kind: model.KInt})
	for _, tn := range []string{"r", "x", "y", "z"} {
		if _, err := db.DefineAtomType(tn, desc); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []struct{ name, a, b string }{
		{"rx", "r", "x"}, {"ry", "r", "y"}, {"xz", "x", "z"}, {"yz", "y", "z"},
	} {
		if _, err := db.DefineLinkType(l.name, model.LinkDesc{SideA: l.a, SideB: l.b}); err != nil {
			t.Fatal(err)
		}
	}
	d, err := core.NewDesc(db, []string{"r", "x", "y", "z"}, []core.DirectedLink{
		{Link: "rx", From: "r", To: "x"},
		{Link: "ry", From: "r", To: "y"},
		{Link: "xz", From: "x", To: "z"},
		{Link: "yz", From: "y", To: "z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, d
}

func mustInsert(t *testing.T, db *storage.Database, tn string, v int64) model.AtomID {
	t.Helper()
	id, err := db.InsertAtom(tn, model.Int(v))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func mustConnect(t *testing.T, db *storage.Database, link string, a, b model.AtomID) {
	t.Helper()
	if err := db.Connect(link, a, b); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverRootsChain checks root recovery on a linear chain: every
// root reachable downward from a seed is recovered, shared interiors
// recover multiple roots, and duplicates collapse.
func TestRecoverRootsChain(t *testing.T) {
	s := sample(t)
	mt := mtState(t, s.DB)
	dv, err := mt.Deriver()
	if err != nil {
		t.Fatal(err)
	}
	desc := mt.Desc()
	edgePos, _ := desc.Pos("edge")

	// Every molecule's full edge set must recover exactly that
	// molecule's root (and possibly more that share the edges).
	set := dv.Derive()
	for _, m := range set {
		seeds := m.AtomsOf("edge")
		roots, err := dv.RecoverRoots(edgePos, seeds)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range roots {
			if r == m.Root() {
				found = true
			}
		}
		if !found {
			t.Fatalf("root %v not recovered from its own edges %v (got %v)", m.Root(), seeds, roots)
		}
		for i := 1; i < len(roots); i++ {
			if roots[i-1] >= roots[i] {
				t.Fatalf("recovered roots not strictly sorted: %v", roots)
			}
		}
	}

	// Entering at the root is the identity (after dedup + sort).
	rootPos, _ := desc.Pos("state")
	rs := set.Roots()
	rs = append(rs, rs[0]) // duplicate seed
	roots, err := dv.RecoverRoots(rootPos, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != len(set) {
		t.Fatalf("root-position recovery returned %d roots, want %d", len(roots), len(set))
	}
}

// TestRecoverRootsDiamondSuperset pins down the over-approximation: on a
// diamond, a z-atom reachable from a root along only one branch is not
// contained in the derived molecule (intersection semantics), yet upward
// recovery still returns that root — recovery is a superset, and pruned
// downward derivation is what restores exactness.
func TestRecoverRootsDiamondSuperset(t *testing.T) {
	db, d := diamondDB(t)
	r1 := mustInsert(t, db, "r", 1)
	x1 := mustInsert(t, db, "x", 1)
	y1 := mustInsert(t, db, "y", 1)
	z1 := mustInsert(t, db, "z", 1)
	// r1's molecule contains z1 through both branches.
	mustConnect(t, db, "rx", r1, x1)
	mustConnect(t, db, "ry", r1, y1)
	mustConnect(t, db, "xz", x1, z1)
	mustConnect(t, db, "yz", y1, z1)
	// r2 reaches z2 only through x: z2 is NOT contained in r2's molecule.
	r2 := mustInsert(t, db, "r", 2)
	x2 := mustInsert(t, db, "x", 2)
	z2 := mustInsert(t, db, "z", 2)
	mustConnect(t, db, "rx", r2, x2)
	mustConnect(t, db, "xz", x2, z2)

	dv, err := core.NewDeriver(db, d)
	if err != nil {
		t.Fatal(err)
	}
	zPos, _ := d.Pos("z")

	roots, err := dv.RecoverRoots(zPos, []model.AtomID{z1})
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || roots[0] != r1 {
		t.Fatalf("RecoverRoots(z1) = %v, want [%v]", roots, r1)
	}

	// z2 recovers r2 even though r2's molecule excludes z2 — the superset.
	roots, err = dv.RecoverRoots(zPos, []model.AtomID{z2})
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || roots[0] != r2 {
		t.Fatalf("RecoverRoots(z2) = %v, want [%v]", roots, r2)
	}
	m, err := dv.DeriveFor(r2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Contains("z", z2) {
		t.Fatal("fixture broken: r2's molecule must exclude z2 (single-branch reach)")
	}
	// Pruned derivation from the recovered candidate with the seeding
	// check as hook discards r2 — exactness restored.
	pc := dv.PrepareChecks([]core.PruneCheck{{Pos: zPos, Qualifies: func(atoms []model.AtomID) bool {
		for _, id := range atoms {
			if id == z2 {
				return true
			}
		}
		return false
	}}})
	if _, ok, err := dv.DeriveForPrepared(r2, pc); err != nil || ok {
		t.Fatalf("pruned derivation from over-approximated root: ok=%v err=%v, want pruned", ok, err)
	}

	// Out-of-range position errors.
	if _, err := dv.RecoverRoots(99, nil); err == nil {
		t.Fatal("out-of-range position must fail")
	}
}

// TestDeriveRootsPrunedParallel checks the parallel pruned batch against
// the sequential hooks path: same alignment, same prunes, any worker
// count.
func TestDeriveRootsPrunedParallel(t *testing.T) {
	s := sample(t)
	mt := pointNeighborhood(t, s.DB)
	dv, err := mt.Deriver()
	if err != nil {
		t.Fatal(err)
	}
	desc := mt.Desc()
	statePos, _ := desc.Pos("state")
	c, _ := s.DB.Container("state")
	pred := expr.Cmp{Op: expr.GT, L: expr.Attr{Type: "state", Name: "hectare"}, R: expr.Lit(model.Float(500))}
	pc := dv.PrepareChecks([]core.PruneCheck{{Pos: statePos, Qualifies: func(atoms []model.AtomID) bool {
		for _, id := range atoms {
			a, ok := c.Get(id)
			if !ok {
				continue
			}
			keep, err := expr.EvalPredicate(pred, expr.AtomBinding{TypeName: "state", Desc: c.Desc(), Atom: a})
			if err == nil && keep {
				return true
			}
		}
		return false
	}}})

	pc2, _ := s.DB.Container("point")
	roots := pc2.IDs()
	var want core.MoleculeSet
	for _, r := range roots {
		m, _, err := dv.DeriveForPrepared(r, pc)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, m) // nil entries included: alignment matters
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := dv.DeriveRootsPrunedParallel(roots, pc, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if (got[i] == nil) != (want[i] == nil) {
				t.Fatalf("workers=%d: prune mismatch at %d", workers, i)
			}
			if got[i] != nil && !got[i].Equal(want[i]) {
				t.Fatalf("workers=%d: molecule %d differs", workers, i)
			}
		}
	}
	// A non-root atom in the batch fails.
	e, _ := s.DB.Container("edge")
	if _, err := dv.DeriveRootsPrunedParallel(e.IDs()[:1], pc, 2); err == nil {
		t.Fatal("non-root atoms must be rejected")
	}
}
