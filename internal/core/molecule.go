package core

import (
	"fmt"
	"sort"
	"strings"

	"mad/internal/model"
	"mad/internal/storage"
)

// Molecule is one element m = <c, g> of a molecule-type occurrence: the
// component atoms c (grouped by the description's atom types) and the
// component links g (grouped by the description's directed edges). A
// molecule references atoms by identity; it never copies them, so two
// overlapping molecules literally share their common subobjects.
type Molecule struct {
	desc *Desc
	root model.AtomID

	// atoms[i] holds the component atoms belonging to desc.Types()[i],
	// in derivation (breadth-first) order.
	atoms [][]model.AtomID
	// links[e] holds the component links that instantiate desc.Edges()[e],
	// each with A = parent (edge From side), B = child.
	links [][]model.Link
	// member[i] indexes atoms[i] for O(1) membership tests.
	member []map[model.AtomID]bool
}

// newMolecule allocates an empty molecule for the description.
func newMolecule(d *Desc, root model.AtomID) *Molecule {
	m := &Molecule{
		desc:   d,
		root:   root,
		atoms:  make([][]model.AtomID, d.NumTypes()),
		links:  make([][]model.Link, d.NumEdges()),
		member: make([]map[model.AtomID]bool, d.NumTypes()),
	}
	for i := range m.member {
		m.member[i] = make(map[model.AtomID]bool)
	}
	return m
}

// reset re-initializes a recycled molecule for a new root of the same
// description, keeping the allocated atom/link slices and member maps.
// Only molecules that never left the deriver (pruned mid-derivation, or
// rejected by a fused filter sink) may be recycled — a molecule handed to
// a caller is referenced by the result set and must stay immutable.
func (m *Molecule) reset(d *Desc, root model.AtomID) {
	m.desc = d
	m.root = root
	for i := range m.atoms {
		m.atoms[i] = m.atoms[i][:0]
		clear(m.member[i])
	}
	for e := range m.links {
		m.links[e] = m.links[e][:0]
	}
}

// addAtom records a component atom under the type at position pos.
func (m *Molecule) addAtom(pos int, id model.AtomID) {
	if m.member[pos][id] {
		return
	}
	m.member[pos][id] = true
	m.atoms[pos] = append(m.atoms[pos], id)
}

// addLink records a component link instantiating edge e.
func (m *Molecule) addLink(e int, l model.Link) {
	m.links[e] = append(m.links[e], l)
}

// Desc returns the molecule's description.
func (m *Molecule) Desc() *Desc { return m.desc }

// Root returns the root atom's identifier.
func (m *Molecule) Root() model.AtomID { return m.root }

// AtomsOf returns the component atoms of the named type, in derivation
// order. The slice is shared; callers must not mutate it.
func (m *Molecule) AtomsOf(typeName string) []model.AtomID {
	pos, ok := m.desc.Pos(typeName)
	if !ok {
		return nil
	}
	return m.atoms[pos]
}

// AtomsAt returns the component atoms of the type at position pos.
func (m *Molecule) AtomsAt(pos int) []model.AtomID { return m.atoms[pos] }

// LinksAt returns the component links of the edge at position e.
func (m *Molecule) LinksAt(e int) []model.Link { return m.links[e] }

// Contains reports whether the molecule holds the atom under the named
// type.
func (m *Molecule) Contains(typeName string, id model.AtomID) bool {
	pos, ok := m.desc.Pos(typeName)
	if !ok {
		return false
	}
	return m.member[pos][id]
}

// Size returns the total number of component atoms.
func (m *Molecule) Size() int {
	n := 0
	for _, as := range m.atoms {
		n += len(as)
	}
	return n
}

// NumLinks returns the total number of component links.
func (m *Molecule) NumLinks() int {
	n := 0
	for _, ls := range m.links {
		n += len(ls)
	}
	return n
}

// AtomSet returns the identifiers of every component atom (deduplicated
// across types, sorted) — the molecule's atom set, used for the
// shared-subobject analyses of Fig. 2.
func (m *Molecule) AtomSet() []model.AtomID {
	set := make(map[model.AtomID]bool)
	for _, as := range m.atoms {
		for _, id := range as {
			set[id] = true
		}
	}
	out := make([]model.AtomID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return model.SortAtomIDs(out)
}

// Equal compares two molecules positionally: same description shape, and
// per node/edge position the same atom and link sets (order-insensitive).
// Propagated result types keep atom identity, so molecules remain
// comparable across enlarged databases (needed by Ω and Δ).
func (m *Molecule) Equal(o *Molecule) bool {
	if m == nil || o == nil {
		return m == o
	}
	if !m.desc.SameShape(o.desc) {
		return false
	}
	if m.root != o.root {
		return false
	}
	for i := range m.atoms {
		if len(m.atoms[i]) != len(o.atoms[i]) {
			return false
		}
		for _, id := range m.atoms[i] {
			if !o.member[i][id] {
				return false
			}
		}
	}
	for e := range m.links {
		if len(m.links[e]) != len(o.links[e]) {
			return false
		}
		set := make(map[model.Link]bool, len(o.links[e]))
		for _, l := range o.links[e] {
			set[l] = true
		}
		for _, l := range m.links[e] {
			if !set[l] {
				return false
			}
		}
	}
	return true
}

// Key returns a canonical string identifying the molecule's content
// (atom sets per position), for hashing molecule sets.
func (m *Molecule) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "r%d|", uint64(m.root))
	for i, as := range m.atoms {
		ids := append([]model.AtomID(nil), as...)
		model.SortAtomIDs(ids)
		fmt.Fprintf(&b, "%d:", i)
		for _, id := range ids {
			fmt.Fprintf(&b, "%d,", uint64(id))
		}
		b.WriteByte('|')
	}
	return b.String()
}

// Format renders the molecule as an indented component tree, fetching
// attribute values from the database. Shared atoms (already printed on
// another path) are marked with "^" — making Fig. 2's shared subobjects
// visible in text form.
func (m *Molecule) Format(db *storage.Database) string {
	var b strings.Builder
	printed := make(map[model.AtomID]bool)
	var rec func(typeName string, id model.AtomID, depth int)
	rec = func(typeName string, id model.AtomID, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		a, ok := db.GetAtom(typeName, id)
		label := id.String()
		if ok {
			label = formatAtom(db, typeName, a)
		}
		if printed[id] {
			fmt.Fprintf(&b, "^%s: %s (shared)\n", typeName, label)
			return
		}
		printed[id] = true
		fmt.Fprintf(&b, "%s: %s\n", typeName, label)
		for _, ei := range m.desc.Outgoing(typeName) {
			e := m.desc.Edge(ei)
			for _, l := range m.links[ei] {
				if l.A == id {
					rec(e.To, l.B, depth+1)
				}
			}
		}
	}
	rec(m.desc.Root(), m.root, 0)
	return b.String()
}

// formatAtom renders one atom with attribute names.
func formatAtom(db *storage.Database, typeName string, a model.Atom) string {
	c, ok := db.Container(typeName)
	if !ok {
		return a.String()
	}
	d := c.Desc()
	parts := make([]string, 0, d.Len())
	for i := 0; i < d.Len(); i++ {
		parts = append(parts, d.Attr(i).Name+"="+a.Get(i).String())
	}
	return a.ID.String() + "{" + strings.Join(parts, ", ") + "}"
}

// MoleculeSet is a materialized molecule-type occurrence.
type MoleculeSet []*Molecule

// Roots returns the root identifiers of all molecules, in order.
func (s MoleculeSet) Roots() []model.AtomID {
	out := make([]model.AtomID, len(s))
	for i, m := range s {
		out[i] = m.root
	}
	return out
}

// SortByRoot orders the set by root identifier, for canonical display.
func (s MoleculeSet) SortByRoot() {
	sort.Slice(s, func(i, j int) bool { return s[i].root < s[j].root })
}

// SharedAtoms returns the atoms that occur in more than one molecule of
// the set, with their occurrence counts — quantifying the non-disjoint
// atom sets the paper's Fig. 2 highlights.
func (s MoleculeSet) SharedAtoms() map[model.AtomID]int {
	count := make(map[model.AtomID]int)
	for _, m := range s {
		for _, id := range m.AtomSet() {
			count[id]++
		}
	}
	for id, n := range count {
		if n < 2 {
			delete(count, id)
		}
	}
	return count
}

// TotalAtoms sums molecule sizes (with multiplicity; shared atoms count
// once per molecule) — the figure an NF² representation would have to
// materialize.
func (s MoleculeSet) TotalAtoms() int {
	n := 0
	for _, m := range s {
		n += m.Size()
	}
	return n
}

// DistinctAtoms counts the distinct atoms across the set — the figure the
// MAD representation stores.
func (s MoleculeSet) DistinctAtoms() int {
	set := make(map[model.AtomID]bool)
	for _, m := range s {
		for _, id := range m.AtomSet() {
			set[id] = true
		}
	}
	return len(set)
}
