// Package core implements the molecule algebra, the paper's primary
// contribution: molecule-type descriptions (Definition 5), molecule
// derivation m_dom (Definition 6), molecule types (Definition 7), the
// molecule-type-definition operator α (Definition 8), result-set
// propagation prop (Definition 9) and the molecule-type operations
// Σ, Π, X, Ω, Δ and the derived intersection Ψ (Definition 10,
// Theorems 2–3).
package core

import (
	"fmt"
	"strings"

	"mad/internal/storage"
)

// DirectedLink is one edge dl = <lname, from, to> of a molecule-type
// description: a link type given a traversal direction for this structure
// (Definition 5). The underlying link type is symmetric; the direction is
// chosen per query — the basis of the "symmetric use of the database"
// illustrated by Fig. 2.
type DirectedLink struct {
	Link string // link-type name
	From string // start atom-type name
	To   string // end atom-type name
}

// String renders the edge as "<link, from, to>".
func (d DirectedLink) String() string {
	return fmt.Sprintf("<%s, %s, %s>", d.Link, d.From, d.To)
}

// Desc is a molecule-type description md = <C, G>: a set of atom-type
// names C and directed link types G forming a directed, acyclic, coherent
// type graph with exactly one root — the md_graph predicate (Definition
// 5). A Desc is immutable after construction.
type Desc struct {
	types []string // C, in declaration order; types[0] need not be the root
	edges []DirectedLink
	str   string // rendering, memoized at construction (Desc is immutable)

	root     string
	topo     []string         // types in a topological order, root first
	incoming map[string][]int // type → indexes into edges arriving at it
	outgoing map[string][]int // type → indexes into edges leaving it
	pos      map[string]int   // type → position in types
}

// NewDesc validates <C, G> against the database schema and computes the
// traversal structure. It enforces md_graph: every node and edge must
// exist in the schema with compatible sides, and the graph must be
// directed, acyclic, coherent, and single-rooted.
func NewDesc(db *storage.Database, types []string, edges []DirectedLink) (*Desc, error) {
	if len(types) == 0 {
		return nil, fmt.Errorf("core: molecule description needs at least one atom type")
	}
	d := &Desc{
		types:    append([]string(nil), types...),
		edges:    append([]DirectedLink(nil), edges...),
		incoming: make(map[string][]int),
		outgoing: make(map[string][]int),
		pos:      make(map[string]int),
	}
	schema := db.Schema()
	for i, t := range d.types {
		if _, dup := d.pos[t]; dup {
			return nil, fmt.Errorf("core: atom type %q appears twice in C (C is a set)", t)
		}
		if _, ok := schema.AtomType(t); !ok {
			return nil, fmt.Errorf("core: unknown atom type %q in molecule description", t)
		}
		d.pos[t] = i
	}
	for i, e := range d.edges {
		if _, ok := d.pos[e.From]; !ok {
			return nil, fmt.Errorf("core: edge %s starts outside C", e)
		}
		if _, ok := d.pos[e.To]; !ok {
			return nil, fmt.Errorf("core: edge %s ends outside C", e)
		}
		lt, ok := schema.LinkType(e.Link)
		if !ok {
			return nil, fmt.Errorf("core: unknown link type %q in molecule description", e.Link)
		}
		ld := lt.Desc
		if !(ld.SideA == e.From && ld.SideB == e.To) && !(ld.SideA == e.To && ld.SideB == e.From) {
			return nil, fmt.Errorf("core: link type %q connects %s, not %q→%q", e.Link, ld, e.From, e.To)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("core: edge %s is a self-loop; reflexive structures need recursive molecule types", e)
		}
		d.incoming[e.To] = append(d.incoming[e.To], i)
		d.outgoing[e.From] = append(d.outgoing[e.From], i)
	}
	if err := d.computeGraph(); err != nil {
		return nil, err
	}
	d.str = d.render()
	return d, nil
}

// computeGraph checks acyclicity, coherence and single-rootedness, and
// fixes a topological order (root first, then by Kahn's algorithm with
// declaration-order tie-breaking for determinism).
func (d *Desc) computeGraph() error {
	var roots []string
	for _, t := range d.types {
		if len(d.incoming[t]) == 0 {
			roots = append(roots, t)
		}
	}
	switch len(roots) {
	case 0:
		return fmt.Errorf("core: molecule description has no root (cyclic)")
	case 1:
		d.root = roots[0]
	default:
		return fmt.Errorf("core: molecule description has several roots: %s", strings.Join(roots, ", "))
	}
	// Kahn's algorithm; deterministic because the frontier is scanned in
	// declaration order.
	indeg := make(map[string]int, len(d.types))
	for _, t := range d.types {
		indeg[t] = len(d.incoming[t])
	}
	done := make(map[string]bool, len(d.types))
	for len(d.topo) < len(d.types) {
		advanced := false
		for _, t := range d.types {
			if done[t] || indeg[t] != 0 {
				continue
			}
			done[t] = true
			d.topo = append(d.topo, t)
			for _, ei := range d.outgoing[t] {
				indeg[d.edges[ei].To]--
			}
			advanced = true
		}
		if !advanced {
			return fmt.Errorf("core: molecule description contains a cycle")
		}
	}
	// Coherence: every node reachable from the root along directed edges.
	// In a DAG with a unique in-degree-0 node every node is reachable from
	// it, but verify explicitly so the invariant survives refactoring.
	reach := map[string]bool{d.root: true}
	for _, t := range d.topo {
		if !reach[t] {
			continue
		}
		for _, ei := range d.outgoing[t] {
			reach[d.edges[ei].To] = true
		}
	}
	for _, t := range d.types {
		if !reach[t] {
			return fmt.Errorf("core: molecule description is not coherent: %q unreachable from root %q", t, d.root)
		}
	}
	return nil
}

// Root returns the root atom-type name.
func (d *Desc) Root() string { return d.root }

// Types returns C in declaration order.
func (d *Desc) Types() []string { return append([]string(nil), d.types...) }

// Edges returns G in declaration order.
func (d *Desc) Edges() []DirectedLink { return append([]DirectedLink(nil), d.edges...) }

// NumTypes returns |C|.
func (d *Desc) NumTypes() int { return len(d.types) }

// NumEdges returns |G|.
func (d *Desc) NumEdges() int { return len(d.edges) }

// Topo returns the fixed topological order, root first.
func (d *Desc) Topo() []string { return append([]string(nil), d.topo...) }

// Pos returns the declaration position of an atom type in C.
func (d *Desc) Pos(typeName string) (int, bool) {
	p, ok := d.pos[typeName]
	return p, ok
}

// HasType reports whether the named atom type belongs to C.
func (d *Desc) HasType(typeName string) bool {
	_, ok := d.pos[typeName]
	return ok
}

// Incoming returns the indexes (into Edges) of edges arriving at the type.
func (d *Desc) Incoming(typeName string) []int { return d.incoming[typeName] }

// Outgoing returns the indexes (into Edges) of edges leaving the type.
func (d *Desc) Outgoing(typeName string) []int { return d.outgoing[typeName] }

// Edge returns the i-th directed link.
func (d *Desc) Edge(i int) DirectedLink { return d.edges[i] }

// SameShape reports whether two descriptions are positionally isomorphic:
// equal node and edge counts, with every edge connecting the same node
// *positions* through possibly renamed types and link types. Propagated
// result descriptions keep their source's shape, so shape equality is the
// compatibility notion for Ω, Δ and molecule comparison across enlarged
// databases.
func (d *Desc) SameShape(o *Desc) bool {
	if len(d.types) != len(o.types) || len(d.edges) != len(o.edges) {
		return false
	}
	for i, e := range d.edges {
		oe := o.edges[i]
		if d.pos[e.From] != o.pos[oe.From] || d.pos[e.To] != o.pos[oe.To] {
			return false
		}
	}
	return d.pos[d.root] == o.pos[o.root]
}

// Equal reports full equality: same types in the same order and the same
// edges (including link-type names).
func (d *Desc) Equal(o *Desc) bool {
	if len(d.types) != len(o.types) || len(d.edges) != len(o.edges) {
		return false
	}
	for i := range d.types {
		if d.types[i] != o.types[i] {
			return false
		}
	}
	for i := range d.edges {
		if d.edges[i] != o.edges[i] {
			return false
		}
	}
	return true
}

// String returns the description in the paper's notation: "<{C}, {G}>"
// with the root marked. The rendering is memoized at construction — the
// plan cache keys on it per statement, so it must not allocate.
func (d *Desc) String() string { return d.str }

// render builds the String rendering once, at construction.
func (d *Desc) render() string {
	var b strings.Builder
	b.WriteString("<{")
	for i, t := range d.types {
		if i > 0 {
			b.WriteString(", ")
		}
		if t == d.root {
			b.WriteString(t + "*")
		} else {
			b.WriteString(t)
		}
	}
	b.WriteString("}, {")
	for i, e := range d.edges {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteString("}>")
	return b.String()
}
