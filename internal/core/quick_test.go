package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/storage"
)

// randomLayeredDB generates a random database with a layered schema
// t0 → t1 → … → t_{depth} (one link type per layer) plus one cross link
// type t0 → t2 when depth permits, and random atoms/links.
func randomLayeredDB(rng *rand.Rand, depth, atomsPerType int) (*storage.Database, []string, []core.DirectedLink, error) {
	db := storage.NewDatabase()
	types := make([]string, depth+1)
	for i := range types {
		types[i] = fmt.Sprintf("t%d", i)
		desc := model.MustDesc(
			model.AttrDesc{Name: "v", Kind: model.KInt},
			model.AttrDesc{Name: "w", Kind: model.KFloat},
		)
		if _, err := db.DefineAtomType(types[i], desc); err != nil {
			return nil, nil, nil, err
		}
	}
	var edges []core.DirectedLink
	for i := 0; i < depth; i++ {
		name := fmt.Sprintf("l%d", i)
		if _, err := db.DefineLinkType(name, model.LinkDesc{SideA: types[i], SideB: types[i+1]}); err != nil {
			return nil, nil, nil, err
		}
		edges = append(edges, core.DirectedLink{Link: name, From: types[i], To: types[i+1]})
	}
	if depth >= 2 {
		// A second path to layer 2: makes t2 a multi-parent node and
		// exercises the AND (contained) semantics.
		if _, err := db.DefineLinkType("skip", model.LinkDesc{SideA: types[0], SideB: types[2]}); err != nil {
			return nil, nil, nil, err
		}
		edges = append(edges, core.DirectedLink{Link: "skip", From: types[0], To: types[2]})
	}
	ids := make([][]model.AtomID, len(types))
	for i, t := range types {
		for j := 0; j < atomsPerType; j++ {
			id, err := db.InsertAtom(t, model.Int(int64(j)), model.Float(rng.Float64()*100))
			if err != nil {
				return nil, nil, nil, err
			}
			ids[i] = append(ids[i], id)
		}
	}
	// Random links, density ~2 per atom per layer.
	for i := 0; i < depth; i++ {
		name := fmt.Sprintf("l%d", i)
		for _, a := range ids[i] {
			for k := 0; k < 2; k++ {
				b := ids[i+1][rng.Intn(len(ids[i+1]))]
				if err := db.Connect(name, a, b); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}
	if depth >= 2 {
		for _, a := range ids[0] {
			if rng.Intn(2) == 0 {
				b := ids[2][rng.Intn(len(ids[2]))]
				if err := db.Connect("skip", a, b); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}
	return db, types, edges, nil
}

// TestDerivationMatchesSpecOnRandomDBs checks DESIGN.md properties 4–6:
// over random layered databases (including a multi-parent node), every
// derived molecule passes the independent mv_graph/totality checker and
// derivation is deterministic.
func TestDerivationMatchesSpecOnRandomDBs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := 2 + rng.Intn(2) // 2..3
		db, types, edges, err := randomLayeredDB(rng, depth, 4+rng.Intn(5))
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		mt, err := core.Define(db, "random", types, edges)
		if err != nil {
			t.Logf("define: %v", err)
			return false
		}
		set, err := mt.Derive()
		if err != nil {
			t.Logf("derive: %v", err)
			return false
		}
		if err := core.VerifySet(db, set); err != nil {
			t.Logf("verify: %v", err)
			return false
		}
		set2, err := mt.Derive()
		if err != nil {
			return false
		}
		for i := range set {
			if set[i].Key() != set2[i].Key() {
				t.Logf("nondeterministic at %d", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestClosurePropertyRandomPipelines checks DESIGN.md property 7: random
// Σ/Π pipelines of depth 3 over random databases always yield valid,
// re-derivable, verifiable molecule types.
func TestClosurePropertyRandomPipelines(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, types, edges, err := randomLayeredDB(rng, 2, 5)
		if err != nil {
			return false
		}
		cur, err := core.Define(db, "p0", types, edges)
		if err != nil {
			return false
		}
		for step := 0; step < 3; step++ {
			switch rng.Intn(2) {
			case 0:
				root := cur.Desc().Root()
				threshold := rng.Float64() * 100
				next, err := core.Restrict(cur, expr.Cmp{Op: expr.LE,
					L: expr.Attr{Type: root, Name: "w"},
					R: expr.Lit(model.Float(threshold))}, "", nil)
				if err != nil {
					t.Logf("Σ step %d: %v", step, err)
					return false
				}
				cur = next
			case 1:
				// Keep a coherent prefix of the types (root plus the
				// chain below it, dropping the deepest layer).
				keep := cur.Desc().Types()
				if len(keep) > 2 {
					keep = keep[:len(keep)-1]
				}
				next, err := core.Project(cur, core.Projection{Keep: keep}, "", nil)
				if err != nil {
					t.Logf("Π step %d: %v", step, err)
					return false
				}
				cur = next
			}
			set, err := cur.Derive()
			if err != nil {
				t.Logf("derive step %d: %v", step, err)
				return false
			}
			if err := core.VerifySet(db, set); err != nil {
				t.Logf("verify step %d: %v", step, err)
				return false
			}
		}
		return db.CheckIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestUnionDifferenceLawsRandom checks DESIGN.md property 8 over random
// partitions: Ω(a,b) has |a|+|b| molecules when a,b partition, Δ(a,a)=∅,
// Ψ(Ω(a,b), a) = a.
func TestUnionDifferenceLawsRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, types, edges, err := randomLayeredDB(rng, 2, 6)
		if err != nil {
			return false
		}
		mt, err := core.Define(db, "base", types, edges)
		if err != nil {
			return false
		}
		threshold := rng.Float64() * 100
		root := mt.Desc().Root()
		lo, err := core.Restrict(mt, expr.Cmp{Op: expr.LE,
			L: expr.Attr{Type: root, Name: "w"},
			R: expr.Lit(model.Float(threshold))}, "", nil)
		if err != nil {
			return false
		}
		hi, err := core.Restrict(mt, expr.Cmp{Op: expr.GT,
			L: expr.Attr{Type: root, Name: "w"},
			R: expr.Lit(model.Float(threshold))}, "", nil)
		if err != nil {
			return false
		}
		nLo, _ := lo.Cardinality()
		nHi, _ := hi.Cardinality()
		nAll, _ := mt.Cardinality()
		if nLo+nHi != nAll {
			t.Logf("partition broken: %d + %d != %d", nLo, nHi, nAll)
			return false
		}
		u, err := core.Union(lo, hi, "", nil)
		if err != nil {
			t.Logf("Ω: %v", err)
			return false
		}
		if nu, _ := u.Cardinality(); nu != nAll {
			t.Logf("|Ω| = %d, want %d", nu, nAll)
			return false
		}
		empty, err := core.Difference(lo, lo, "", nil)
		if err != nil {
			return false
		}
		if ne, _ := empty.Cardinality(); ne != 0 {
			return false
		}
		inter, err := core.Intersect(u, lo, "", nil)
		if err != nil {
			t.Logf("Ψ: %v", err)
			return false
		}
		ni, _ := inter.Cardinality()
		return ni == nLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
