package core_test

import (
	"context"
	"errors"
	"testing"

	"mad/internal/core"
	"mad/internal/geo"
)

// streamFixture builds a synthetic occurrence large enough that the
// streaming executor actually runs multi-batch, multi-worker.
func streamFixture(t *testing.T) (*core.Deriver, core.MoleculeSet) {
	t.Helper()
	syn, err := geo.BuildSynthetic(geo.Config{
		States: 200, EdgesPerArea: 3, Sharing: 2, Rivers: 4, RiverEdges: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(syn.DB, "mt_state",
		[]string{"state", "area", "edge", "point"},
		[]core.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		})
	if err != nil {
		t.Fatal(err)
	}
	dv, err := mt.Deriver()
	if err != nil {
		t.Fatal(err)
	}
	return dv, dv.Derive()
}

// TestFusedStreamOrder: for any worker count and batch size, the
// concatenation of the emitted batches is exactly the sequential
// derivation order, and every batch respects the batch-size bound.
func TestFusedStreamOrder(t *testing.T) {
	dv, want := streamFixture(t)
	roots := dv.RootIDs()
	for _, workers := range []int{1, 2, 3, 8} {
		for _, batchSize := range []int{1, 7, 64, 1000} {
			var got core.MoleculeSet
			batches := 0
			_, err := dv.DeriveRootsFusedStream(context.Background(), roots, workers, batchSize,
				func(int) core.FusedWorker { return core.FusedWorker{} },
				func(ms core.MoleculeSet) error {
					if len(ms) == 0 || len(ms) > batchSize {
						t.Fatalf("workers=%d batch=%d: emitted batch of %d", workers, batchSize, len(ms))
					}
					batches++
					got = append(got, ms...)
					return nil
				})
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, batchSize, err)
			}
			if len(got) != len(want) {
				t.Fatalf("workers=%d batch=%d: %d molecules, want %d", workers, batchSize, len(got), len(want))
			}
			for i := range want {
				if !want[i].Equal(got[i]) {
					t.Fatalf("workers=%d batch=%d: molecule %d out of order", workers, batchSize, i)
				}
			}
			if wantBatches := (len(roots) + batchSize - 1) / batchSize; batches != wantBatches {
				t.Fatalf("workers=%d batch=%d: %d batches, want %d", workers, batchSize, batches, wantBatches)
			}
		}
	}
}

// TestFusedStreamCancel: cancelling the context after the first batch
// stops the executor with ctx.Err() — in particular it does not deliver
// the remaining batches — and the call still joins all its workers.
func TestFusedStreamCancel(t *testing.T) {
	dv, want := streamFixture(t)
	roots := dv.RootIDs()
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		delivered := 0
		_, err := dv.DeriveRootsFusedStream(ctx, roots, workers, 8,
			func(int) core.FusedWorker { return core.FusedWorker{} },
			func(ms core.MoleculeSet) error {
				delivered += len(ms)
				cancel()
				return nil
			})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if delivered == 0 || delivered >= len(want) {
			t.Fatalf("workers=%d: delivered %d of %d after first-batch cancel", workers, delivered, len(want))
		}
		cancel()
	}
}

// TestFusedStreamEmitError: an emit error stops the workers and
// surfaces unchanged.
func TestFusedStreamEmitError(t *testing.T) {
	dv, _ := streamFixture(t)
	roots := dv.RootIDs()
	sentinel := errors.New("stop")
	for _, workers := range []int{1, 4} {
		calls := 0
		_, err := dv.DeriveRootsFusedStream(context.Background(), roots, workers, 8,
			func(int) core.FusedWorker { return core.FusedWorker{} },
			func(ms core.MoleculeSet) error {
				calls++
				return sentinel
			})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want sentinel", workers, err)
		}
		if calls != 1 {
			t.Fatalf("workers=%d: emit called %d times after error", workers, calls)
		}
	}
}

// TestFusedParallelCtx: the collect-all form honors cancellation too —
// an already-cancelled context derives nothing.
func TestFusedParallelCtx(t *testing.T) {
	dv, want := streamFixture(t)
	roots := dv.RootIDs()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := dv.DeriveRootsFusedParallel(ctx, roots, 4, func(int) core.FusedWorker { return core.FusedWorker{} }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// And a nil context means "run to completion".
	out, _, err := dv.DeriveRootsFusedParallel(nil, roots, 4, func(int) core.FusedWorker { return core.FusedWorker{} })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(want) {
		t.Fatalf("%d molecules, want %d", len(out), len(want))
	}
}
