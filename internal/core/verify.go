package core

import (
	"fmt"

	"mad/internal/model"
	"mad/internal/storage"
)

// VerifyMolecule checks mv_graph(m, md) — the correctness predicate of
// Definition 6 — directly against the database, independently of the
// derivation engine, so property tests can confirm that derivation and
// specification agree:
//
//   - shape: every component atom belongs to its type's occurrence, every
//     component link instantiates its edge's link type between contained
//     atoms;
//   - md_graph on the instance: the molecule graph is coherent (every atom
//     reachable from the root along component links) — acyclicity follows
//     from the layered type structure;
//   - total: containment — every non-root component atom has, for *each*
//     directed link type arriving at its type, a linked contained parent —
//     and maximality — no atom outside the molecule satisfies containment.
func VerifyMolecule(db *storage.Database, m *Molecule) error {
	d := m.Desc()

	// Shape: atoms exist in their containers.
	for i, t := range d.Types() {
		c, ok := db.Container(t)
		if !ok {
			return fmt.Errorf("verify: no container for %q", t)
		}
		for _, id := range m.AtomsAt(i) {
			if !c.Has(id) {
				return fmt.Errorf("verify: component atom %v not in occurrence of %q", id, t)
			}
		}
	}
	// Shape: links exist and connect contained atoms.
	for ei, e := range d.Edges() {
		ls, ok := db.LinkStore(e.Link)
		if !ok {
			return fmt.Errorf("verify: no store for link type %q", e.Link)
		}
		fromA := ls.Desc().SideA == e.From
		fromPos, _ := d.Pos(e.From)
		toPos, _ := d.Pos(e.To)
		for _, l := range m.LinksAt(ei) {
			if !m.member[fromPos][l.A] {
				return fmt.Errorf("verify: link %v: parent not contained under %q", l, e.From)
			}
			if !m.member[toPos][l.B] {
				return fmt.Errorf("verify: link %v: child not contained under %q", l, e.To)
			}
			var stored bool
			if fromA {
				stored = ls.Has(l.A, l.B)
			} else {
				stored = ls.Has(l.B, l.A)
			}
			if !stored {
				return fmt.Errorf("verify: link %v not in occurrence of %q", l, e.Link)
			}
		}
	}
	// Coherence: every component atom reachable from the root.
	reach := map[model.AtomID]bool{m.Root(): true}
	for _, t := range d.Topo() {
		for _, ei := range d.Outgoing(t) {
			for _, l := range m.LinksAt(ei) {
				if reach[l.A] {
					reach[l.B] = true
				}
			}
		}
	}
	for i, t := range d.Types() {
		for _, id := range m.AtomsAt(i) {
			if !reach[id] {
				return fmt.Errorf("verify: atom %v of %q unreachable from root (incoherent)", id, t)
			}
		}
	}
	// Totality.
	return verifyTotal(db, m)
}

// verifyTotal checks the predicate total(m, md): containment of every
// component atom and maximality against the full occurrences.
func verifyTotal(db *storage.Database, m *Molecule) error {
	d := m.Desc()
	for _, t := range d.Types() {
		if t == d.Root() {
			continue
		}
		pos, _ := d.Pos(t)
		c, ok := db.Container(t)
		if !ok {
			return fmt.Errorf("verify: no container for %q", t)
		}
		var violation error
		c.Scan(func(a model.Atom) bool {
			in, err := containedIn(db, m, t, a.ID)
			if err != nil {
				violation = err
				return false
			}
			isMember := m.member[pos][a.ID]
			if in && !isMember {
				violation = fmt.Errorf("verify: not total: atom %v of %q is contained but missing", a.ID, t)
				return false
			}
			if !in && isMember {
				violation = fmt.Errorf("verify: not total: atom %v of %q is a member but not contained", a.ID, t)
				return false
			}
			return true
		})
		if violation != nil {
			return violation
		}
	}
	return nil
}

// containedIn evaluates the contained(a, m, md) predicate for a non-root
// atom: for every directed link type arriving at its type, some contained
// parent atom links to it.
func containedIn(db *storage.Database, m *Molecule, typeName string, id model.AtomID) (bool, error) {
	d := m.Desc()
	for _, ei := range d.Incoming(typeName) {
		e := d.Edge(ei)
		ls, ok := db.LinkStore(e.Link)
		if !ok {
			return false, fmt.Errorf("verify: no store for link type %q", e.Link)
		}
		fromA := ls.Desc().SideA == e.From
		fromPos, _ := d.Pos(e.From)
		linked := false
		for _, pa := range m.AtomsAt(fromPos) {
			if fromA {
				if ls.Has(pa, id) {
					linked = true
					break
				}
			} else if ls.Has(id, pa) {
				linked = true
				break
			}
		}
		if !linked {
			return false, nil
		}
	}
	return true, nil
}

// VerifySet runs VerifyMolecule over a whole occurrence.
func VerifySet(db *storage.Database, set MoleculeSet) error {
	for i, m := range set {
		if err := VerifyMolecule(db, m); err != nil {
			return fmt.Errorf("molecule %d (root %v): %w", i, m.Root(), err)
		}
	}
	return nil
}
