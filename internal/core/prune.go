package core

import "mad/internal/model"

// PruneTo builds the sub-molecule induced by a sub-description: sub must
// use a subset of m's types and edges (same root), and the result contains
// the component atoms reachable under sub's structure using only m's
// recorded component links, with the same multi-parent containment
// semantics as derivation. Query-mode projection uses it to avoid
// enlarging the database; on tree-shaped structures it coincides with the
// algebraic Π (re-derivation over the propagated result set), which
// remains the normative semantics.
func (m *Molecule) PruneTo(sub *Desc) *Molecule {
	out := newMolecule(sub, m.root)
	rootPos, _ := sub.Pos(sub.Root())
	out.addAtom(rootPos, m.root)

	// Map each sub edge to the original edge index in m's description.
	edgeMap := make([]int, sub.NumEdges())
	for i, e := range sub.Edges() {
		edgeMap[i] = -1
		for j, oe := range m.desc.Edges() {
			if oe == e {
				edgeMap[i] = j
				break
			}
		}
	}

	for _, t := range sub.Topo() {
		if t == sub.Root() {
			continue
		}
		pos, _ := sub.Pos(t)
		inc := sub.Incoming(t)

		var cand map[model.AtomID]bool
		for k, ei := range inc {
			oe := edgeMap[ei]
			if oe < 0 {
				continue
			}
			e := sub.Edge(ei)
			fromPos, _ := sub.Pos(e.From)
			s := make(map[model.AtomID]bool)
			for _, l := range m.links[oe] {
				if out.member[fromPos][l.A] {
					s[l.B] = true
				}
			}
			if k == 0 {
				cand = s
				continue
			}
			for id := range cand {
				if !s[id] {
					delete(cand, id)
				}
			}
		}
		for _, ei := range inc {
			oe := edgeMap[ei]
			if oe < 0 {
				continue
			}
			e := sub.Edge(ei)
			fromPos, _ := sub.Pos(e.From)
			for _, l := range m.links[oe] {
				if out.member[fromPos][l.A] && cand[l.B] {
					out.addAtom(pos, l.B)
					out.addLink(ei, l)
				}
			}
		}
	}
	return out
}
