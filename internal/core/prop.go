package core

import (
	"fmt"

	"mad/internal/model"
	"mad/internal/storage"
)

// PropResult reports what propagation installed.
type PropResult struct {
	// Type is the molecule type over the enlarged database.
	Type *MoleculeType
	// TypeMap maps each original atom-type name of rsd to its renamed
	// propagated atom type (C′ of Definition 9).
	TypeMap map[string]string
	// LinkMap maps each original edge position of rsd to the inherited
	// link type's fresh name (G′ of Definition 9).
	LinkMap []string
}

// Prop materializes a result set rst = <mname, rsd, rsv> into the
// database: prop(rst, DB) = <mt, DB′> (Definition 9). The database is
// enlarged in place with
//
//   - renamed atom types C′ that "exhibit the same atom-type description
//     but only a restricted atom-type occurrence: the corresponding atoms
//     are selected only from the elements within rsv" — the very same
//     atoms, by identity, so sharing survives propagation; and
//   - inherited link types G′ whose occurrences are restricted to the
//     component links used by rsv,
//
// and the returned molecule type satisfies mt = α[mname, G′](C′) — the
// closure step every molecule-type operation ends with (Fig. 5).
//
// projections optionally narrows the propagated description of selected
// original types to the named attributes (molecule projection Π reuses
// propagation this way); a nil map or missing entry keeps all attributes.
func Prop(db *storage.Database, mname string, rsd *Desc, rsv MoleculeSet, projections map[string][]string, tr *OpTrace) (*PropResult, error) {
	done := tr.Begin("propagation (prop)")
	schema := db.Schema()

	// Install C′: renamed atom types with restricted occurrences.
	typeMap := make(map[string]string, rsd.NumTypes())
	renamedTypes := make([]string, 0, rsd.NumTypes())
	for _, t := range rsd.Types() {
		c, ok := db.Container(t)
		if !ok {
			return nil, fmt.Errorf("core: prop: atom type %q has no container", t)
		}
		desc := c.Desc()
		var positions []int
		if attrs, narrow := projections[t]; narrow && attrs != nil {
			pd, err := desc.Project(attrs)
			if err != nil {
				return nil, fmt.Errorf("core: prop: projecting %q: %w", t, err)
			}
			positions = make([]int, len(attrs))
			for i, a := range attrs {
				positions[i], _ = desc.Lookup(a)
			}
			desc = pd
		}
		fresh := schema.FreshAtomName(t)
		if _, err := db.DefineAtomType(fresh, desc); err != nil {
			return nil, err
		}
		typeMap[t] = fresh
		renamedTypes = append(renamedTypes, fresh)

		pos, _ := rsd.Pos(t)
		seen := make(map[model.AtomID]bool)
		for _, m := range rsv {
			// Result sets may mix molecules over same-shaped but
			// differently named descriptions (Ω, Δ); fetch each atom from
			// the container of the molecule's *own* type at this position.
			src := c
			if mt := m.Desc().Types()[pos]; mt != t {
				mc, ok := db.Container(mt)
				if !ok {
					return nil, fmt.Errorf("core: prop: atom type %q has no container", mt)
				}
				src = mc
			}
			for _, id := range m.AtomsAt(pos) {
				if seen[id] {
					continue
				}
				seen[id] = true
				a, ok := src.Get(id)
				if !ok {
					return nil, fmt.Errorf("core: prop: component atom %v missing from %q", id, t)
				}
				if positions != nil {
					vals := make([]model.Value, len(positions))
					for i, p := range positions {
						vals[i] = a.Get(p)
					}
					a = model.NewAtom(id, vals...)
				}
				if err := db.AdoptAtom(fresh, a); err != nil {
					return nil, err
				}
			}
		}
	}

	// Install G′: inherited link types with restricted occurrences.
	linkMap := make([]string, rsd.NumEdges())
	newEdges := make([]DirectedLink, rsd.NumEdges())
	for ei, e := range rsd.Edges() {
		fresh := schema.FreshLinkName(e.Link)
		desc := model.LinkDesc{SideA: typeMap[e.From], SideB: typeMap[e.To]}
		if _, err := db.DefineLinkType(fresh, desc); err != nil {
			return nil, err
		}
		linkMap[ei] = fresh
		newEdges[ei] = DirectedLink{Link: fresh, From: typeMap[e.From], To: typeMap[e.To]}
		for _, m := range rsv {
			for _, l := range m.LinksAt(ei) {
				// l.A is always the edge's From side in derived molecules.
				if err := db.Connect(fresh, l.A, l.B); err != nil {
					return nil, err
				}
			}
		}
	}

	done(fmt.Sprintf("C'=%d types, G'=%d links, |rsv|=%d", len(renamedTypes), len(newEdges), len(rsv)))

	// Close with the molecule-type definition α over the enlarged DB.
	doneAlpha := tr.Begin("definition (α)")
	md, err := NewDesc(db, renamedTypes, newEdges)
	if err != nil {
		return nil, fmt.Errorf("core: prop: result description invalid: %w", err)
	}
	mt, err := DefineDesc(db, mname, md)
	if err != nil {
		return nil, err
	}
	doneAlpha(fmt.Sprintf("mt=%s over enlarged DB", mt.Name()))
	return &PropResult{Type: mt, TypeMap: typeMap, LinkMap: linkMap}, nil
}
