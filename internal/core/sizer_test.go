package core_test

import (
	"testing"

	"mad/internal/core"
)

func TestBatchSizerDefaultsAndClamps(t *testing.T) {
	s := core.NewBatchSizer(0, 0, 0)
	if s.Size() != core.DefaultStreamBatch {
		t.Fatalf("default start = %d", s.Size())
	}
	if s := core.NewBatchSizer(1, 0, 0); s.Size() != core.MinStreamBatch {
		t.Fatalf("start below floor not clamped: %d", s.Size())
	}
	if s := core.NewBatchSizer(1<<20, 0, 0); s.Size() != core.MaxStreamBatch {
		t.Fatalf("start above ceiling not clamped: %d", s.Size())
	}
}

func TestBatchSizerShrinksOnBackpressure(t *testing.T) {
	s := core.NewBatchSizer(0, 0, 0)
	start := s.Size()
	s.Observe(true)
	if s.Size() != start/2 {
		t.Fatalf("one blocked emit: %d -> %d, want halved", start, s.Size())
	}
	// Sustained backpressure floors at MinStreamBatch, never zero.
	for i := 0; i < 20; i++ {
		s.Observe(true)
	}
	if s.Size() != core.MinStreamBatch {
		t.Fatalf("sustained backpressure floor = %d", s.Size())
	}
}

func TestBatchSizerGrowsOnStreakOnly(t *testing.T) {
	s := core.NewBatchSizer(core.MinStreamBatch, 0, 0)
	// Three fast emits are not a streak yet.
	for i := 0; i < 3; i++ {
		s.Observe(false)
	}
	if s.Size() != core.MinStreamBatch {
		t.Fatalf("grew before streak completed: %d", s.Size())
	}
	// The fourth completes the streak and doubles the batch.
	s.Observe(false)
	if s.Size() != 2*core.MinStreamBatch {
		t.Fatalf("after streak = %d, want %d", s.Size(), 2*core.MinStreamBatch)
	}
	// A blocked emit resets the streak: three fast, one blocked, three
	// fast again must not grow.
	sz := s.Size()
	for i := 0; i < 3; i++ {
		s.Observe(false)
	}
	s.Observe(true)
	half := s.Size()
	if half != sz/2 {
		t.Fatalf("blocked after partial streak: %d, want %d", half, sz/2)
	}
	for i := 0; i < 3; i++ {
		s.Observe(false)
	}
	if s.Size() != half {
		t.Fatalf("partial streak after reset grew the batch: %d", s.Size())
	}
	// Sustained fast drain ceilings at MaxStreamBatch.
	for i := 0; i < 200; i++ {
		s.Observe(false)
	}
	if s.Size() != core.MaxStreamBatch {
		t.Fatalf("sustained drain ceiling = %d", s.Size())
	}
}

func TestBatchSizerPinned(t *testing.T) {
	// min == max pins the size: DeriveRootsFusedStream uses this to keep
	// its fixed-batch contract.
	s := core.NewBatchSizer(64, 64, 64)
	for i := 0; i < 50; i++ {
		s.Observe(i%3 == 0)
	}
	if s.Size() != 64 {
		t.Fatalf("pinned sizer moved: %d", s.Size())
	}
}
