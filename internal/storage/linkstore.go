package storage

import (
	"fmt"

	"mad/internal/model"
)

// LinkStore holds the occurrence of one link type as a pair of adjacency
// maps, one per declared side, so that both traversal directions are O(1)
// per step. The two maps always mirror each other: links are symmetric
// ("the direct representation and the consideration of bidirectional, i.e.
// symmetric links establish the basis of the model's flexibility",
// Section 2).
//
// For reflexive link types the sides remain distinct roles — the paper's
// bill-of-material example evaluates either the super-component or the
// sub-component view by traversing the same link type in one direction or
// the other.
type LinkStore struct {
	name string
	desc model.LinkDesc

	fromA map[model.AtomID][]model.AtomID // side-A atom → side-B partners
	fromB map[model.AtomID][]model.AtomID // side-B atom → side-A partners
	count int
	// epochBase is the occurrence size at the last plan-epoch bump this
	// store caused; the database compares count against it to decide when
	// link churn has drifted far enough to invalidate cached plans (plans
	// cost traversals from the store's fan statistics).
	epochBase int
}

// NewLinkStore creates an empty occurrence for the given link type.
func NewLinkStore(name string, desc model.LinkDesc) *LinkStore {
	return &LinkStore{
		name:  name,
		desc:  desc,
		fromA: make(map[model.AtomID][]model.AtomID),
		fromB: make(map[model.AtomID][]model.AtomID),
	}
}

// Name returns the link type's name.
func (ls *LinkStore) Name() string { return ls.name }

// Desc returns the link type's description.
func (ls *LinkStore) Desc() model.LinkDesc { return ls.desc }

// Len returns the number of links in the occurrence.
func (ls *LinkStore) Len() int { return ls.count }

// Has reports whether the link <a, b> (a on side A) is present. For
// reflexive link types the unsorted-pair reading applies: <a, b> and
// <b, a> denote the same link.
func (ls *LinkStore) Has(a, b model.AtomID) bool {
	if containsID(ls.fromA[a], b) {
		return true
	}
	if ls.desc.Reflexive() && containsID(ls.fromA[b], a) {
		return true
	}
	return false
}

// hasExact reports presence of the directed representation only.
func (ls *LinkStore) hasExact(a, b model.AtomID) bool {
	return containsID(ls.fromA[a], b)
}

func containsID(ids []model.AtomID, id model.AtomID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Connect inserts the link <a, b> with a on side A and b on side B. It is
// idempotent: inserting an existing link (including the mirrored form of a
// reflexive link) is a no-op. Cardinality restrictions are enforced here.
func (ls *LinkStore) Connect(a, b model.AtomID) error {
	if ls.Has(a, b) {
		return nil
	}
	if max := ls.desc.CardA.Max; max > 0 && len(ls.fromA[a])+1 > max {
		return fmt.Errorf("storage: link type %q: atom %v exceeds cardinality %s on side %s",
			ls.name, a, ls.desc.CardA, ls.desc.SideA)
	}
	if max := ls.desc.CardB.Max; max > 0 && len(ls.fromB[b])+1 > max {
		return fmt.Errorf("storage: link type %q: atom %v exceeds cardinality %s on side %s",
			ls.name, b, ls.desc.CardB, ls.desc.SideB)
	}
	ls.fromA[a] = append(ls.fromA[a], b)
	ls.fromB[b] = append(ls.fromB[b], a)
	ls.count++
	return nil
}

// Disconnect removes the link <a, b>. It returns false when absent. For
// reflexive link types it removes whichever orientation is stored.
func (ls *LinkStore) Disconnect(a, b model.AtomID) bool {
	if ls.hasExact(a, b) {
		ls.fromA[a] = removeID(ls.fromA[a], b)
		ls.fromB[b] = removeID(ls.fromB[b], a)
		ls.count--
		return true
	}
	if ls.desc.Reflexive() && ls.hasExact(b, a) {
		ls.fromA[b] = removeID(ls.fromA[b], a)
		ls.fromB[a] = removeID(ls.fromB[a], b)
		ls.count--
		return true
	}
	return false
}

func removeID(ids []model.AtomID, id model.AtomID) []model.AtomID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// PartnersFromA returns side-B partners of a side-A atom, in insertion
// order. For reflexive link types this is the "forward" view (e.g.
// sub-components). The returned slice is shared; callers must not mutate.
func (ls *LinkStore) PartnersFromA(a model.AtomID) []model.AtomID { return ls.fromA[a] }

// PartnersFromB returns side-A partners of a side-B atom — the symmetric
// view. The returned slice is shared; callers must not mutate it.
func (ls *LinkStore) PartnersFromB(b model.AtomID) []model.AtomID { return ls.fromB[b] }

// Degree returns the number of partners of an atom on the given side.
func (ls *LinkStore) Degree(id model.AtomID, sideA bool) int {
	if sideA {
		return len(ls.fromA[id])
	}
	return len(ls.fromB[id])
}

// SideAtoms returns the number of distinct atoms with at least one
// partner on the given side — the denominator of the per-step fan-out
// statistic the planner uses to cost traversals in either direction.
func (ls *LinkStore) SideAtoms(sideA bool) int {
	if sideA {
		return len(ls.fromA)
	}
	return len(ls.fromB)
}

// AvgFan returns the average number of partners an atom on the given side
// reaches in one traversal step (occurrence size over distinct linked
// atoms on that side). Links are symmetric, so the statistic exists for
// both directions; the planner reads the child side's fan to cost the
// upward climb of an interior-index access path. Zero when the side has
// no linked atoms.
func (ls *LinkStore) AvgFan(fromSideA bool) float64 {
	n := ls.SideAtoms(fromSideA)
	if n == 0 {
		return 0
	}
	return float64(ls.count) / float64(n)
}

// DropAtom removes every link incident to the atom on either side and
// returns how many links were removed. The database uses this to guarantee
// there are "no dangling references (i.e. links)" after atom deletion.
func (ls *LinkStore) DropAtom(id model.AtomID) int {
	removed := 0
	if partners := ls.fromA[id]; len(partners) > 0 {
		for _, b := range append([]model.AtomID(nil), partners...) {
			if ls.Disconnect(id, b) {
				removed++
			}
		}
	}
	if partners := ls.fromB[id]; len(partners) > 0 {
		for _, a := range append([]model.AtomID(nil), partners...) {
			if ls.Disconnect(a, id) {
				removed++
			}
		}
	}
	delete(ls.fromA, id)
	delete(ls.fromB, id)
	return removed
}

// Scan calls fn for every stored link, side-A endpoint first, in a
// deterministic order (side-A atoms ascending, partners in insertion
// order). fn returning false stops the scan.
func (ls *LinkStore) Scan(fn func(model.Link) bool) {
	ids := make([]model.AtomID, 0, len(ls.fromA))
	for a := range ls.fromA {
		ids = append(ids, a)
	}
	model.SortAtomIDs(ids)
	for _, a := range ids {
		for _, b := range ls.fromA[a] {
			if !fn(model.Link{A: a, B: b}) {
				return
			}
		}
	}
}

// Links returns all links in the deterministic scan order.
func (ls *LinkStore) Links() []model.Link {
	out := make([]model.Link, 0, ls.count)
	ls.Scan(func(l model.Link) bool {
		out = append(out, l)
		return true
	})
	return out
}
