package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mad/internal/model"
)

// verList is one version of an atom's partner list: an immutable slice
// installed at commit timestamp ts. Mutation never edits a list in place
// — connect and disconnect push a copy-on-write head — so a reader that
// resolved a chain may keep using the slice without holding any lock.
// Only prev is ever written after linking, by vacuum under the write
// latch.
type verList struct {
	items []model.AtomID
	ts    uint64
	prev  *verList
}

// visibleList resolves a partner-list chain against a read timestamp.
func visibleList(v *verList, ts uint64) []model.AtomID {
	for ; v != nil; v = v.prev {
		if v.ts <= ts {
			return v.items
		}
	}
	return nil
}

// LinkStore holds the occurrence of one link type as a pair of adjacency
// maps, one per declared side, so that both traversal directions are O(1)
// per step. The two maps always mirror each other: links are symmetric
// ("the direct representation and the consideration of bidirectional, i.e.
// symmetric links establish the basis of the model's flexibility",
// Section 2). Each adjacency entry is a version chain of copy-on-write
// partner lists, so snapshot readers traverse the lists a past commit
// installed while writers push new heads.
//
// For reflexive link types the sides remain distinct roles — the paper's
// bill-of-material example evaluates either the super-component or the
// sub-component view by traversing the same link type in one direction or
// the other.
type LinkStore struct {
	name  string
	desc  model.LinkDesc
	clock *atomic.Uint64

	latch sync.RWMutex
	fromA map[model.AtomID]*verList // side-A atom → side-B partners
	fromB map[model.AtomID]*verList // side-B atom → side-A partners
	live  int                       // links present at the newest version heads
	// epochBase is the occurrence size at the last plan-epoch bump this
	// store caused; the database compares live against it to decide when
	// link churn has drifted far enough to invalidate cached plans (plans
	// cost traversals from the store's fan statistics).
	epochBase int
}

// NewLinkStore creates an empty occurrence for the given link type. A
// standalone store owns a private clock; the database rebinds it to the
// shared commit clock on registration.
func NewLinkStore(name string, desc model.LinkDesc) *LinkStore {
	clock := new(atomic.Uint64)
	clock.Store(1)
	return &LinkStore{
		name:  name,
		desc:  desc,
		clock: clock,
		fromA: make(map[model.AtomID]*verList),
		fromB: make(map[model.AtomID]*verList),
	}
}

// bindClock attaches the store to the database's published commit clock.
func (ls *LinkStore) bindClock(clock *atomic.Uint64) { ls.clock = clock }

// Name returns the link type's name.
func (ls *LinkStore) Name() string { return ls.name }

// Desc returns the link type's description.
func (ls *LinkStore) Desc() model.LinkDesc { return ls.desc }

// Len returns the number of links in the occurrence at the newest
// versions. Use LenAt for an exact count under a pinned snapshot.
func (ls *LinkStore) Len() int {
	ls.latch.RLock()
	defer ls.latch.RUnlock()
	return ls.live
}

// LenAt counts the links visible at the given commit timestamp.
func (ls *LinkStore) LenAt(ts uint64) int {
	ls.latch.RLock()
	defer ls.latch.RUnlock()
	n := 0
	for _, head := range ls.fromA {
		n += len(visibleList(head, ts))
	}
	return n
}

// Has reports whether the link <a, b> (a on side A) is present at the
// latest commit. For reflexive link types the unsorted-pair reading
// applies: <a, b> and <b, a> denote the same link.
func (ls *LinkStore) Has(a, b model.AtomID) bool {
	return ls.HasAt(a, b, ls.clock.Load())
}

// HasAt reports whether the link is visible at ts.
func (ls *LinkStore) HasAt(a, b model.AtomID, ts uint64) bool {
	ls.latch.RLock()
	defer ls.latch.RUnlock()
	return ls.hasLocked(a, b, ts)
}

func (ls *LinkStore) hasLocked(a, b model.AtomID, ts uint64) bool {
	if containsID(visibleList(ls.fromA[a], ts), b) {
		return true
	}
	if ls.desc.Reflexive() && containsID(visibleList(ls.fromA[b], ts), a) {
		return true
	}
	return false
}

// hasExactAt reports presence of the directed representation only.
func (ls *LinkStore) hasExactAt(a, b model.AtomID, ts uint64) bool {
	ls.latch.RLock()
	defer ls.latch.RUnlock()
	return containsID(visibleList(ls.fromA[a], ts), b)
}

func containsID(ids []model.AtomID, id model.AtomID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// push installs a new list version for id in the given direction map at
// ts and returns an undo that pops it.
func (ls *LinkStore) push(m map[model.AtomID]*verList, id model.AtomID, items []model.AtomID, ts uint64) func() {
	old := m[id]
	m[id] = &verList{items: items, ts: ts, prev: old}
	return func() {
		if old == nil {
			delete(m, id)
		} else {
			m[id] = old
		}
	}
}

// headItems returns the newest partner list for id, including versions a
// mid-flight commit has installed but not yet published. Commit apply
// paths read this; callers hold the latch.
func headItems(m map[model.AtomID]*verList, id model.AtomID) []model.AtomID {
	if head := m[id]; head != nil {
		return head.items
	}
	return nil
}

// applyConnect installs the link <a, b> at commit timestamp ts. It is
// idempotent: inserting an existing link (including the mirrored form of
// a reflexive link) is a no-op with a nil undo. Cardinality restrictions
// are enforced here. Callers hold the database's commit mutex.
func (ls *LinkStore) applyConnect(a, b model.AtomID, ts uint64) (undo func(), err error) {
	ls.latch.Lock()
	defer ls.latch.Unlock()
	headTS := ts // heads pushed by this commit are newest; resolve against ts
	if ls.hasLocked(a, b, headTS) {
		return nil, nil
	}
	la := headItems(ls.fromA, a)
	lb := headItems(ls.fromB, b)
	if max := ls.desc.CardA.Max; max > 0 && len(la)+1 > max {
		return nil, fmt.Errorf("storage: link type %q: atom %v exceeds cardinality %s on side %s",
			ls.name, a, ls.desc.CardA, ls.desc.SideA)
	}
	if max := ls.desc.CardB.Max; max > 0 && len(lb)+1 > max {
		return nil, fmt.Errorf("storage: link type %q: atom %v exceeds cardinality %s on side %s",
			ls.name, b, ls.desc.CardB, ls.desc.SideB)
	}
	undoA := ls.push(ls.fromA, a, append(append([]model.AtomID(nil), la...), b), ts)
	undoB := ls.push(ls.fromB, b, append(append([]model.AtomID(nil), lb...), a), ts)
	ls.live++
	return func() {
		ls.latch.Lock()
		defer ls.latch.Unlock()
		undoB()
		undoA()
		ls.live--
	}, nil
}

// applyDisconnect removes the link <a, b> at ts, handling the mirrored
// orientation of reflexive links. removed=false (with nil undo) when the
// link is absent.
func (ls *LinkStore) applyDisconnect(a, b model.AtomID, ts uint64) (removed bool, undo func()) {
	ls.latch.Lock()
	defer ls.latch.Unlock()
	if containsID(headItems(ls.fromA, a), b) {
		// stored as <a, b>
	} else if ls.desc.Reflexive() && containsID(headItems(ls.fromA, b), a) {
		a, b = b, a // stored mirrored
	} else {
		return false, nil
	}
	undoA := ls.push(ls.fromA, a, removeIDCopy(headItems(ls.fromA, a), b), ts)
	undoB := ls.push(ls.fromB, b, removeIDCopy(headItems(ls.fromB, b), a), ts)
	ls.live--
	return true, func() {
		ls.latch.Lock()
		defer ls.latch.Unlock()
		undoB()
		undoA()
		ls.live++
	}
}

// removeIDCopy returns a copy of ids without the first occurrence of id.
func removeIDCopy(ids []model.AtomID, id model.AtomID) []model.AtomID {
	out := make([]model.AtomID, 0, len(ids))
	skipped := false
	for _, x := range ids {
		if !skipped && x == id {
			skipped = true
			continue
		}
		out = append(out, x)
	}
	return out
}

// applyDropAtom removes every link incident to the atom on either side at
// ts and returns how many links were removed plus one undo covering all
// of them. The database uses this to guarantee there are "no dangling
// references (i.e. links)" after atom deletion.
func (ls *LinkStore) applyDropAtom(id model.AtomID, ts uint64) (removed int, undo func()) {
	// Read the chain heads, not the published view: earlier operations of
	// the same commit may have installed partners at the candidate ts.
	ls.latch.RLock()
	partnersA := append([]model.AtomID(nil), headItems(ls.fromA, id)...)
	partnersB := append([]model.AtomID(nil), headItems(ls.fromB, id)...)
	ls.latch.RUnlock()
	var undos []func()
	for _, b := range partnersA {
		if ok, u := ls.applyDisconnect(id, b, ts); ok {
			removed++
			undos = append(undos, u)
		}
	}
	for _, a := range partnersB {
		if ok, u := ls.applyDisconnect(a, id, ts); ok {
			removed++
			undos = append(undos, u)
		}
	}
	if removed == 0 {
		return 0, nil
	}
	return removed, func() {
		for i := len(undos) - 1; i >= 0; i-- {
			undos[i]()
		}
	}
}

// PartnersFromA returns side-B partners of a side-A atom at the latest
// commit, in insertion order. For reflexive link types this is the
// "forward" view (e.g. sub-components). The returned slice is an
// immutable version; callers must not mutate it.
func (ls *LinkStore) PartnersFromA(a model.AtomID) []model.AtomID {
	return ls.PartnersFromAAt(a, ls.clock.Load())
}

// PartnersFromAAt returns the side-B partners visible at ts.
func (ls *LinkStore) PartnersFromAAt(a model.AtomID, ts uint64) []model.AtomID {
	ls.latch.RLock()
	defer ls.latch.RUnlock()
	return visibleList(ls.fromA[a], ts)
}

// PartnersFromB returns side-A partners of a side-B atom — the symmetric
// view. The returned slice is an immutable version; callers must not
// mutate it.
func (ls *LinkStore) PartnersFromB(b model.AtomID) []model.AtomID {
	return ls.PartnersFromBAt(b, ls.clock.Load())
}

// PartnersFromBAt returns the side-A partners visible at ts.
func (ls *LinkStore) PartnersFromBAt(b model.AtomID, ts uint64) []model.AtomID {
	ls.latch.RLock()
	defer ls.latch.RUnlock()
	return visibleList(ls.fromB[b], ts)
}

// Degree returns the number of partners of an atom on the given side at
// the latest commit.
func (ls *LinkStore) Degree(id model.AtomID, sideA bool) int {
	if sideA {
		return len(ls.PartnersFromA(id))
	}
	return len(ls.PartnersFromB(id))
}

// SideAtoms returns the number of distinct atoms with at least one
// partner on the given side at the latest commit — the denominator of the
// per-step fan-out statistic the planner uses to cost traversals in
// either direction.
func (ls *LinkStore) SideAtoms(sideA bool) int {
	ls.latch.RLock()
	defer ls.latch.RUnlock()
	ts := ls.clock.Load()
	m := ls.fromA
	if !sideA {
		m = ls.fromB
	}
	n := 0
	for _, head := range m {
		if len(visibleList(head, ts)) > 0 {
			n++
		}
	}
	return n
}

// AvgFan returns the average number of partners an atom on the given side
// reaches in one traversal step (occurrence size over distinct linked
// atoms on that side). Links are symmetric, so the statistic exists for
// both directions; the planner reads the child side's fan to cost the
// upward climb of an interior-index access path. Zero when the side has
// no linked atoms.
func (ls *LinkStore) AvgFan(fromSideA bool) float64 {
	n := ls.SideAtoms(fromSideA)
	if n == 0 {
		return 0
	}
	return float64(ls.Len()) / float64(n)
}

// Scan calls fn for every link at the latest commit, side-A endpoint
// first, in a deterministic order (side-A atoms ascending, partners in
// insertion order). fn returning false stops the scan.
func (ls *LinkStore) Scan(fn func(model.Link) bool) {
	ls.ScanAt(ls.clock.Load(), fn)
}

// ScanAt iterates the links visible at ts in the deterministic scan
// order. The visible set is captured under the read latch and fn runs
// outside it, so fn may freely re-enter the storage layer.
func (ls *LinkStore) ScanAt(ts uint64, fn func(model.Link) bool) {
	for _, l := range ls.LinksAt(ts) {
		if !fn(l) {
			return
		}
	}
}

// Links returns all links at the latest commit in deterministic order.
func (ls *LinkStore) Links() []model.Link {
	return ls.LinksAt(ls.clock.Load())
}

// LinksAt returns the links visible at ts in deterministic order.
func (ls *LinkStore) LinksAt(ts uint64) []model.Link {
	ls.latch.RLock()
	ids := make([]model.AtomID, 0, len(ls.fromA))
	lists := make(map[model.AtomID][]model.AtomID, len(ls.fromA))
	for a, head := range ls.fromA {
		if items := visibleList(head, ts); len(items) > 0 {
			ids = append(ids, a)
			lists[a] = items
		}
	}
	ls.latch.RUnlock()
	model.SortAtomIDs(ids)
	out := make([]model.Link, 0, len(ids))
	for _, a := range ids {
		for _, b := range lists[a] {
			out = append(out, model.Link{A: a, B: b})
		}
	}
	return out
}

// versionCount reports the total number of version nodes across both
// adjacency directions — the vacuum leak-check metric.
func (ls *LinkStore) versionCount() int {
	ls.latch.RLock()
	defer ls.latch.RUnlock()
	n := 0
	for _, head := range ls.fromA {
		for v := head; v != nil; v = v.prev {
			n++
		}
	}
	for _, head := range ls.fromB {
		for v := head; v != nil; v = v.prev {
			n++
		}
	}
	return n
}

// chainStats reports the store's version-chain pressure across both
// adjacency directions: chains, total nodes and the longest chain.
func (ls *LinkStore) chainStats() (chains, nodes, maxLen int) {
	ls.latch.RLock()
	defer ls.latch.RUnlock()
	for _, m := range []map[model.AtomID]*verList{ls.fromA, ls.fromB} {
		for _, head := range m {
			n := 0
			for v := head; v != nil; v = v.prev {
				n++
			}
			chains++
			nodes += n
			if n > maxLen {
				maxLen = n
			}
		}
	}
	return chains, nodes, maxLen
}

// vacuum truncates every partner-list chain below the horizon and drops
// entries whose anchored list is empty with no newer versions. It returns
// the number of version nodes reclaimed.
func (ls *LinkStore) vacuum(horizon uint64) int {
	ls.latch.Lock()
	defer ls.latch.Unlock()
	reclaimed := 0
	for _, m := range []map[model.AtomID]*verList{ls.fromA, ls.fromB} {
		for id, head := range m {
			var anchor *verList
			for v := head; v != nil; v = v.prev {
				if v.ts <= horizon {
					anchor = v
					break
				}
			}
			if anchor == nil {
				continue
			}
			for v := anchor.prev; v != nil; v = v.prev {
				reclaimed++
			}
			anchor.prev = nil
			if anchor == head && len(anchor.items) == 0 {
				delete(m, id)
				reclaimed++
			}
		}
	}
	return reclaimed
}
