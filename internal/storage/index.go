package storage

import (
	"fmt"
	"sort"

	"mad/internal/model"
)

// Index is a secondary hash index over one attribute of one atom type,
// mapping attribute value to the identifiers of atoms carrying it. The
// query optimizer uses it for equality restrictions on molecule roots.
type Index struct {
	typeName string
	attr     string
	pos      int
	entries  map[model.Key][]model.AtomID
}

// NewIndex creates an empty index over the attribute at position pos.
func NewIndex(typeName, attr string, pos int) *Index {
	return &Index{
		typeName: typeName,
		attr:     attr,
		pos:      pos,
		entries:  make(map[model.Key][]model.AtomID),
	}
}

// Attr returns the indexed attribute name.
func (ix *Index) Attr() string { return ix.attr }

// Add registers an atom under its attribute value.
func (ix *Index) Add(a model.Atom) {
	k := a.Get(ix.pos).Key()
	ix.entries[k] = append(ix.entries[k], a.ID)
}

// remove unregisters an atom.
func (ix *Index) remove(a model.Atom) {
	k := a.Get(ix.pos).Key()
	ix.entries[k] = removeID(ix.entries[k], a.ID)
	if len(ix.entries[k]) == 0 {
		delete(ix.entries, k)
	}
}

// Lookup returns the identifiers of atoms whose attribute equals v, sorted
// ascending for determinism.
func (ix *Index) Lookup(v model.Value) []model.AtomID {
	ids := ix.entries[v.Key()]
	out := make([]model.AtomID, len(ids))
	copy(out, ids)
	return model.SortAtomIDs(out)
}

// Len returns the number of distinct keys in the index.
func (ix *Index) Len() int { return len(ix.entries) }

// indexKey names an index within the database.
func indexKey(typeName, attr string) string { return typeName + "." + attr }

// CreateIndex builds a secondary index over typeName.attr, back-filling it
// from the current occurrence. It errs on unknown types or attributes and
// on duplicate index creation.
func (db *Database) CreateIndex(typeName, attr string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.containerByName(typeName)
	if !ok {
		return fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	pos, ok := c.Desc().Lookup(attr)
	if !ok {
		return fmt.Errorf("storage: atom type %q has no attribute %q", typeName, attr)
	}
	key := indexKey(typeName, attr)
	if _, dup := db.indexes[key]; dup {
		return fmt.Errorf("storage: index on %s already exists", key)
	}
	ix := NewIndex(typeName, attr, pos)
	c.Scan(func(a model.Atom) bool {
		ix.Add(a)
		return true
	})
	db.indexes[key] = ix
	db.bumpPlanEpoch()
	return nil
}

// DropIndex removes the index over typeName.attr.
func (db *Database) DropIndex(typeName, attr string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := indexKey(typeName, attr)
	if _, ok := db.indexes[key]; !ok {
		return false
	}
	delete(db.indexes, key)
	db.bumpPlanEpoch()
	return true
}

// IndexLookup consults the index over typeName.attr, returning ok=false
// when no such index exists.
func (db *Database) IndexLookup(typeName, attr string, v model.Value) ([]model.AtomID, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ix, ok := db.indexes[indexKey(typeName, attr)]
	if !ok {
		return nil, false
	}
	db.stats.IndexLookups.Add(1)
	return ix.Lookup(v), true
}

// HasIndex reports whether an index over typeName.attr exists.
func (db *Database) HasIndex(typeName, attr string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.indexes[indexKey(typeName, attr)]
	return ok
}

// IndexCardinality returns the number of distinct keys in the index over
// typeName.attr — the statistic the query planner divides the occurrence
// size by to estimate equality selectivity. ok=false without an index.
func (db *Database) IndexCardinality(typeName, attr string) (int, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ix, ok := db.indexes[indexKey(typeName, attr)]
	if !ok {
		return 0, false
	}
	return ix.Len(), true
}

// Indexes lists the existing indexes as "type.attr" strings, sorted.
func (db *Database) Indexes() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.indexes))
	for k := range db.indexes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// indexesOf returns the indexes covering the named atom type.
func (db *Database) indexesOf(typeName string) []*Index {
	var out []*Index
	for k, ix := range db.indexes {
		if ix.typeName == typeName {
			_ = k
			out = append(out, ix)
		}
	}
	return out
}
