package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mad/internal/model"
)

// Index is a secondary hash index over one attribute of one atom type,
// mapping attribute value to the identifiers of atoms carrying it. The
// query optimizer uses it for equality restrictions on molecule roots.
// Postings are version chains like every other occurrence structure, so
// a snapshot reader's index lookup agrees exactly with the membership it
// observes by scanning.
type Index struct {
	typeName string
	attr     string
	pos      int
	clock    *atomic.Uint64

	latch   sync.RWMutex
	entries map[model.Key]*verList
	keys    int // distinct keys with a non-empty newest posting

	// vals recovers the attribute value behind each entry key (Key is a
	// one-way encoding), and order caches the entry keys sorted by that
	// value — the ordered view ScanOrderedAt walks. order is rebuilt
	// lazily: mutations only invalidate it when the key *set* changes
	// (first posting for a value, vacuum dropping a dead key), so steady
	// UPDATE/DELETE traffic on existing keys never pays a re-sort.
	vals       map[model.Key]model.Value
	order      []orderedKey
	orderDirty bool
}

// orderedKey is one entry of the ordered view: the decoded attribute
// value and the map key it indexes.
type orderedKey struct {
	v model.Value
	k model.Key
}

// NewIndex creates an empty index over the attribute at position pos.
func NewIndex(typeName, attr string, pos int) *Index {
	clock := new(atomic.Uint64)
	clock.Store(1)
	return &Index{
		typeName: typeName,
		attr:     attr,
		pos:      pos,
		clock:    clock,
		entries:  make(map[model.Key]*verList),
		vals:     make(map[model.Key]model.Value),
	}
}

// bindClock attaches the index to the database's published commit clock.
func (ix *Index) bindClock(clock *atomic.Uint64) { ix.clock = clock }

// Attr returns the indexed attribute name.
func (ix *Index) Attr() string { return ix.attr }

// applyAdd registers an atom under its attribute value at commit
// timestamp ts, returning an undo that pops the pushed posting version.
func (ix *Index) applyAdd(a model.Atom, ts uint64) (undo func()) {
	v := a.Get(ix.pos)
	k := v.Key()
	ix.latch.Lock()
	defer ix.latch.Unlock()
	old := ix.entries[k]
	items := headPosting(old)
	ix.entries[k] = &verList{items: append(append([]model.AtomID(nil), items...), a.ID), ts: ts, prev: old}
	if old == nil {
		ix.vals[k] = v
		ix.orderDirty = true
	}
	wasEmpty := len(items) == 0
	if wasEmpty {
		ix.keys++
	}
	return func() {
		ix.latch.Lock()
		defer ix.latch.Unlock()
		if old == nil {
			delete(ix.entries, k)
			delete(ix.vals, k)
			ix.orderDirty = true
		} else {
			ix.entries[k] = old
		}
		if wasEmpty {
			ix.keys--
		}
	}
}

// applyRemove unregisters an atom at ts.
func (ix *Index) applyRemove(a model.Atom, ts uint64) (undo func()) {
	v := a.Get(ix.pos)
	k := v.Key()
	ix.latch.Lock()
	defer ix.latch.Unlock()
	old := ix.entries[k]
	items := removeIDCopy(headPosting(old), a.ID)
	ix.entries[k] = &verList{items: items, ts: ts, prev: old}
	if old == nil {
		ix.vals[k] = v
		ix.orderDirty = true
	}
	nowEmpty := len(items) == 0 && len(headPosting(old)) > 0
	if nowEmpty {
		ix.keys--
	}
	return func() {
		ix.latch.Lock()
		defer ix.latch.Unlock()
		if old == nil {
			delete(ix.entries, k)
			delete(ix.vals, k)
			ix.orderDirty = true
		} else {
			ix.entries[k] = old
		}
		if nowEmpty {
			ix.keys++
		}
	}
}

// headPosting returns the newest posting list of a chain, nil for nil.
func headPosting(v *verList) []model.AtomID {
	if v == nil {
		return nil
	}
	return v.items
}

// Lookup returns the identifiers of atoms whose attribute equals v at the
// latest commit, sorted ascending for determinism.
func (ix *Index) Lookup(v model.Value) []model.AtomID {
	return ix.LookupAt(v, ix.clock.Load())
}

// LookupAt returns the identifiers visible at ts, sorted ascending.
func (ix *Index) LookupAt(v model.Value, ts uint64) []model.AtomID {
	ix.latch.RLock()
	ids := visibleList(ix.entries[v.Key()], ts)
	ix.latch.RUnlock()
	out := make([]model.AtomID, len(ids))
	copy(out, ids)
	return model.SortAtomIDs(out)
}

// Len returns the number of distinct keys with at least one atom at the
// newest versions.
func (ix *Index) Len() int {
	ix.latch.RLock()
	defer ix.latch.RUnlock()
	return ix.keys
}

// versionCount reports the total number of posting versions.
func (ix *Index) versionCount() int {
	ix.latch.RLock()
	defer ix.latch.RUnlock()
	n := 0
	for _, head := range ix.entries {
		for v := head; v != nil; v = v.prev {
			n++
		}
	}
	return n
}

// chainStats reports the index's version-chain pressure: posting chains,
// total versions and the longest chain.
func (ix *Index) chainStats() (chains, nodes, maxLen int) {
	ix.latch.RLock()
	defer ix.latch.RUnlock()
	for _, head := range ix.entries {
		n := 0
		for v := head; v != nil; v = v.prev {
			n++
		}
		chains++
		nodes += n
		if n > maxLen {
			maxLen = n
		}
	}
	return chains, nodes, maxLen
}

// vacuum truncates posting chains below the horizon, dropping keys whose
// anchored posting is empty with no newer versions. It returns the number
// of versions reclaimed.
func (ix *Index) vacuum(horizon uint64) int {
	ix.latch.Lock()
	defer ix.latch.Unlock()
	reclaimed := 0
	for k, head := range ix.entries {
		var anchor *verList
		for v := head; v != nil; v = v.prev {
			if v.ts <= horizon {
				anchor = v
				break
			}
		}
		if anchor == nil {
			continue
		}
		for v := anchor.prev; v != nil; v = v.prev {
			reclaimed++
		}
		anchor.prev = nil
		if anchor == head && len(anchor.items) == 0 {
			delete(ix.entries, k)
			delete(ix.vals, k)
			ix.orderDirty = true
			reclaimed++
		}
	}
	return reclaimed
}

// keyLess is a total order over entry keys, used only as a determinism
// tiebreak between distinct keys whose values compare equal (1 vs 1.0).
func keyLess(a, b model.Key) bool {
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	if a.I != b.I {
		return a.I < b.I
	}
	if a.F != b.F {
		return a.F < b.F
	}
	return a.S < b.S
}

// rebuildOrderLocked refreshes the value-sorted entry-key cache. Values
// that compare equal across kinds (1 and 1.0) fall back to the entry-key
// order so the walk is deterministic. Callers hold the write latch.
func (ix *Index) rebuildOrderLocked() {
	if !ix.orderDirty {
		return
	}
	ix.order = ix.order[:0]
	for k, v := range ix.vals {
		ix.order = append(ix.order, orderedKey{v: v, k: k})
	}
	sort.Slice(ix.order, func(i, j int) bool {
		if c := ix.order[i].v.Compare(ix.order[j].v); c != 0 {
			return c < 0
		}
		return keyLess(ix.order[i].k, ix.order[j].k)
	})
	ix.orderDirty = false
}

// ScanOrderedAt walks the index in attribute-value order (descending
// when desc is set) as of commit timestamp ts, invoking fn with each
// value and the identifiers of the atoms carrying it — sorted ascending,
// so equal-key runs have a deterministic ID order regardless of scan
// direction. fn returning false stops the walk. Empty postings (keys
// whose atoms are all newer than ts, or deleted by ts) are skipped, which
// is what makes the walk MVCC-correct: a key committed after ts resolves
// to an empty visible posting, and vacuum can only drop keys whose
// posting is empty at every reachable timestamp.
func (ix *Index) ScanOrderedAt(ts uint64, desc bool, fn func(model.Value, []model.AtomID) bool) {
	// The order cache is copied under the latch and walked without it:
	// keys added mid-walk committed above ts, keys removed mid-walk
	// resolve to empty postings — either way the walk's view at ts is
	// unaffected.
	ix.latch.Lock()
	ix.rebuildOrderLocked()
	order := make([]orderedKey, len(ix.order))
	copy(order, ix.order)
	ix.latch.Unlock()
	step := func(ok orderedKey) bool {
		ix.latch.RLock()
		ids := visibleList(ix.entries[ok.k], ts)
		ix.latch.RUnlock()
		if len(ids) == 0 {
			return true
		}
		out := make([]model.AtomID, len(ids))
		copy(out, ids)
		return fn(ok.v, model.SortAtomIDs(out))
	}
	if desc {
		for i := len(order) - 1; i >= 0; i-- {
			if !step(order[i]) {
				return
			}
		}
		return
	}
	for _, ok := range order {
		if !step(ok) {
			return
		}
	}
}

// indexKey names an index within the database.
func indexKey(typeName, attr string) string { return typeName + "." + attr }

// CreateIndex builds a secondary index over typeName.attr, back-filling
// it from the current occurrence as one commit. It errs on unknown types
// or attributes and on duplicate index creation.
func (db *Database) CreateIndex(typeName, attr string) error {
	db.commitMu.Lock()
	if err := db.walGate(); err != nil {
		db.commitMu.Unlock()
		return err
	}
	ts := db.lastAlloc + 1
	if err := db.createIndexAt(typeName, attr, ts); err != nil {
		db.commitMu.Unlock()
		return err
	}
	return db.sealCommit(ts, []walOp{{kind: walOpCreateIndex, name: typeName, attr: attr}})
}

// createIndexAt is the registry-and-backfill half of CreateIndex, shared
// with WAL replay: the backfill scans the occurrence as of ts (every
// earlier commit is applied by then) and installs postings at ts.
func (db *Database) createIndexAt(typeName, attr string, ts uint64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.containerByName(typeName)
	if !ok {
		return fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	pos, ok := c.Desc().Lookup(attr)
	if !ok {
		return fmt.Errorf("storage: atom type %q has no attribute %q", typeName, attr)
	}
	key := indexKey(typeName, attr)
	if _, dup := db.indexes[key]; dup {
		return fmt.Errorf("storage: index on %s already exists", key)
	}
	ix := NewIndex(typeName, attr, pos)
	ix.bindClock(&db.latestTS)
	c.ScanAt(ts, func(a model.Atom) bool {
		ix.applyAdd(a, ts)
		return true
	})
	db.indexes[key] = ix
	db.bumpPlanEpoch()
	return nil
}

// DropIndex removes the index over typeName.attr.
func (db *Database) DropIndex(typeName, attr string) bool {
	db.commitMu.Lock()
	if err := db.walGate(); err != nil {
		db.commitMu.Unlock()
		return false
	}
	if !db.dropIndex(typeName, attr) {
		db.commitMu.Unlock()
		return false
	}
	if db.wal == nil {
		db.commitMu.Unlock()
		return true
	}
	ts := db.lastAlloc + 1
	return db.sealCommit(ts, []walOp{{kind: walOpDropIndex, name: typeName, attr: attr}}) == nil
}

// dropIndex is the registry half of DropIndex, shared with WAL replay.
func (db *Database) dropIndex(typeName, attr string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := indexKey(typeName, attr)
	if _, ok := db.indexes[key]; !ok {
		return false
	}
	delete(db.indexes, key)
	db.bumpPlanEpoch()
	return true
}

// IndexLookup consults the index over typeName.attr at the latest commit,
// returning ok=false when no such index exists.
func (db *Database) IndexLookup(typeName, attr string, v model.Value) ([]model.AtomID, bool) {
	return db.IndexLookupAt(typeName, attr, v, db.latestTS.Load())
}

// IndexLookupAt consults the index at the given commit timestamp.
func (db *Database) IndexLookupAt(typeName, attr string, v model.Value, ts uint64) ([]model.AtomID, bool) {
	db.mu.RLock()
	ix, ok := db.indexes[indexKey(typeName, attr)]
	db.mu.RUnlock()
	if !ok {
		return nil, false
	}
	db.stats.IndexLookups.Add(1)
	return ix.LookupAt(v, ts), true
}

// IndexOrderedAt walks the index over typeName.attr in attribute-value
// order at the given commit timestamp (see Index.ScanOrderedAt), giving
// the query planner its sort-free ORDER BY access path. ok=false when no
// such index exists.
func (db *Database) IndexOrderedAt(typeName, attr string, ts uint64, desc bool, fn func(model.Value, []model.AtomID) bool) bool {
	db.mu.RLock()
	ix, ok := db.indexes[indexKey(typeName, attr)]
	db.mu.RUnlock()
	if !ok {
		return false
	}
	db.stats.IndexLookups.Add(1)
	ix.ScanOrderedAt(ts, desc, fn)
	return true
}

// HasIndex reports whether an index over typeName.attr exists.
func (db *Database) HasIndex(typeName, attr string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.indexes[indexKey(typeName, attr)]
	return ok
}

// IndexCardinality returns the number of distinct keys in the index over
// typeName.attr — the statistic the query planner divides the occurrence
// size by to estimate equality selectivity. ok=false without an index.
func (db *Database) IndexCardinality(typeName, attr string) (int, bool) {
	db.mu.RLock()
	ix, ok := db.indexes[indexKey(typeName, attr)]
	db.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return ix.Len(), true
}

// Indexes lists the existing indexes as "type.attr" strings, sorted.
func (db *Database) Indexes() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.indexes))
	for k := range db.indexes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// indexesOf returns the indexes covering the named atom type; callers
// hold db.mu.
func (db *Database) indexesOf(typeName string) []*Index {
	var out []*Index
	for _, ix := range db.indexes {
		if ix.typeName == typeName {
			out = append(out, ix)
		}
	}
	return out
}
