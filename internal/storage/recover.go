package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mad/internal/model"
	"mad/internal/storage/stats"
)

// This file implements the durable half of the storage layer: Open
// attaches a write-ahead log to a directory, Recover rebuilds a database
// from the newest checkpoint plus the log tail, and Checkpoint writes a
// consistent snapshot pinned at a live read view and truncates the log
// below it. The checkpoint file ("MADCKPT1") embeds the MADSNAP1
// snapshot between a header (the checkpoint timestamp) and two trailer
// sections: the index definitions and the per-attribute histogram states
// — so a recovered server starts with warm planner statistics.

const (
	ckptMagic   = "MADCKPT1"
	ckptFile    = "checkpoint.mad"
	ckptTmpFile = "checkpoint.tmp"
)

// ErrNotDurable is returned by durability operations on a database that
// was constructed in memory (NewDatabase) instead of Open.
var ErrNotDurable = errors.New("storage: database has no write-ahead log (use Open)")

// Open recovers the database persisted in dir (creating an empty one on
// first use) and attaches a write-ahead log: every subsequent commit is
// fsynced — through the group-commit flusher — before it publishes. A
// torn record tail left by a crash is truncated away; everything before
// it replays.
func Open(dir string) (*Database, error) {
	return openWith(dir, osOpenWAL, false)
}

// openWith is Open with the log's file implementation and sync policy
// injectable — the crash-injection harness and the group-commit
// benchmark enter here.
func openWith(dir string, openFn walOpenFunc, perCommitSync bool) (*Database, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A crash mid-checkpoint leaves checkpoint.tmp; the rename never
	// happened, so the previous checkpoint (if any) is still authoritative.
	os.Remove(filepath.Join(dir, ckptTmpFile))
	db, torn, err := recoverDir(dir)
	if err != nil {
		return nil, err
	}
	if torn != nil {
		// Drop the torn frame and everything after it, including any later
		// segments (none should exist — a torn tail only forms in the last
		// segment — but a corrupt directory must not resurrect records that
		// recovery refused to replay).
		for _, p := range torn.laterSegs {
			if err := os.Remove(p); err != nil {
				return nil, err
			}
		}
		if err := os.Truncate(torn.path, torn.off); err != nil {
			return nil, err
		}
		syncDir(dir)
	}
	segs, err := listWALSegments(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	w, err := newWAL(dir, next, db.publishUpTo, openFn, perCommitSync)
	if err != nil {
		return nil, err
	}
	db.wal = w
	db.dir = dir
	return db, nil
}

// Recover rebuilds a database from dir without attaching a log: newest
// checkpoint first, then the log tail in order, stopping at the first
// torn or checksum-failed record. The result is exactly the state an
// Open would serve; crash tests compare it against an in-memory twin.
func Recover(dir string) (*Database, error) {
	db, _, err := recoverDir(dir)
	return db, err
}

// Dir returns the directory backing this database, empty for an
// in-memory one.
func (db *Database) Dir() string { return db.dir }

// Close flushes and closes the write-ahead log. Commits issued after
// Close fail; readers keep working. Close on an in-memory database is a
// no-op.
func (db *Database) Close() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.Close()
}

// WALCounters reports (records appended, fsyncs issued) since Open —
// zero for an in-memory database. Group commit shows up as syncs growing
// far slower than appends under concurrent committers.
func (db *Database) WALCounters() (appends, syncs int64) {
	if db.wal == nil {
		return 0, 0
	}
	return db.wal.Counters()
}

// SetAutoCheckpoint arms background checkpointing: when the live
// write-ahead log (record bytes appended since the last rotation)
// exceeds limit bytes, the flusher triggers Database.Checkpoint in the
// background, so a long-running server stops growing the log
// unboundedly. Each threshold crossing fires exactly one checkpoint —
// the trigger re-arms only after the checkpoint completes and its
// rotation has reset the live counter. A non-positive limit disables
// the trigger.
func (db *Database) SetAutoCheckpoint(limit int64) error {
	if db.wal == nil {
		return ErrNotDurable
	}
	db.wal.setAutoCheckpoint(limit, func() {
		if _, err := db.Checkpoint(); err == nil {
			db.autoCkpts.Add(1)
		}
	})
	return nil
}

// AutoCheckpoints reports how many background checkpoints the
// SetAutoCheckpoint trigger has completed.
func (db *Database) AutoCheckpoints() int64 { return db.autoCkpts.Load() }

// LiveWALBytes reports the record bytes appended to the log since its
// last rotation — the region a checkpoint has not yet covered. Zero for
// an in-memory database.
func (db *Database) LiveWALBytes() int64 {
	if db.wal == nil {
		return 0
	}
	return db.wal.liveBytes.Load()
}

// tornInfo describes where replay stopped: the segment holding the first
// torn frame, the byte offset of that frame, and any segments after it.
type tornInfo struct {
	path      string
	off       int64
	laterSegs []string
}

// recoverDir loads the newest checkpoint (if any) and replays the log
// tail on top.
func recoverDir(dir string) (*Database, *tornInfo, error) {
	var db *Database
	ckptTS := uint64(1)
	f, err := os.Open(filepath.Join(dir, ckptFile))
	switch {
	case err == nil:
		db, ckptTS, err = decodeCheckpoint(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("storage: reading checkpoint: %w", err)
		}
	case os.IsNotExist(err):
		db = NewDatabase()
	default:
		return nil, nil, err
	}
	torn, err := replaySegments(db, dir, ckptTS)
	if err != nil {
		return nil, nil, err
	}
	return db, torn, nil
}

// replaySegments replays every log record above ckptTS in segment order,
// advancing the clocks per record so a committed record is fully visible
// before the next applies. Replay ends at the first torn frame; an apply
// error (a record that contradicts the recovered state) is a hard error.
func replaySegments(db *Database, dir string, ckptTS uint64) (*tornInfo, error) {
	segs, err := listWALSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, seg := range segs {
		path := filepath.Join(dir, walSegName(seg))
		off, torn, err := readWALSegment(path, func(ts uint64, ops []walOp) error {
			if ts <= ckptTS {
				return nil // already inside the checkpoint
			}
			if err := db.applyWALRecord(ts, ops); err != nil {
				return err
			}
			db.latestTS.Store(ts)
			db.lastAlloc = ts
			return nil
		})
		if err != nil {
			return nil, err
		}
		if torn {
			t := &tornInfo{path: path, off: off}
			for _, s := range segs[i+1:] {
				t.laterSegs = append(t.laterSegs, filepath.Join(dir, walSegName(s)))
			}
			return t, nil
		}
	}
	return nil, nil
}

// applyWALRecord redoes one commit's write set at its original
// timestamp, through the same apply paths live commits use.
func (db *Database) applyWALRecord(ts uint64, ops []walOp) error {
	for i := range ops {
		if err := db.applyWALOp(ts, &ops[i]); err != nil {
			return fmt.Errorf("storage: wal replay at ts %d: %w", ts, err)
		}
	}
	return nil
}

func (db *Database) applyWALOp(ts uint64, op *walOp) error {
	switch op.kind {
	case walOpPut:
		db.mu.RLock()
		c, ok := db.containerByName(op.name)
		ixs := db.indexesOf(op.name)
		db.mu.RUnlock()
		if !ok {
			return fmt.Errorf("unknown atom type %q", op.name)
		}
		stored, err := c.validate(op.atom.ID, op.atom.Vals)
		if err != nil {
			return err
		}
		old, hadOld := c.GetAt(stored.ID, ts)
		c.syncSeq(stored.ID)
		c.applyPut(stored, ts)
		for _, ix := range ixs {
			if hadOld {
				ix.applyRemove(old, ts)
			}
			ix.applyAdd(stored, ts)
		}
		if hadOld {
			db.histDelete(op.name, old)
		} else {
			db.stats.AtomsInserted.Add(1)
		}
		db.histInsert(op.name, stored)
	case walOpDelete:
		db.mu.RLock()
		c, ok := db.containerByName(op.name)
		ixs := db.indexesOf(op.name)
		var stores []*LinkStore
		if ok {
			for _, lt := range db.schema.LinkTypesOf(op.name) {
				if ls, present := db.links[lt.Name]; present {
					stores = append(stores, ls)
				}
			}
		}
		db.mu.RUnlock()
		if !ok {
			return fmt.Errorf("unknown atom type %q", op.name)
		}
		a, ok := c.GetAt(op.id, ts)
		if !ok {
			return fmt.Errorf("atom %v not in %q", op.id, op.name)
		}
		// The record carries only the delete; the link cascade recomputes
		// here exactly as it did at commit time, since replay reproduces
		// the same pre-state.
		dropped := 0
		for _, ls := range stores {
			if n, _ := ls.applyDropAtom(op.id, ts); n > 0 {
				dropped += n
			}
		}
		if _, err := c.applyDelete(op.id, ts); err != nil {
			return err
		}
		for _, ix := range ixs {
			ix.applyRemove(a, ts)
		}
		db.stats.AtomsDeleted.Add(1)
		db.stats.LinksDropped.Add(int64(dropped))
		db.histDelete(op.name, a)
	case walOpConnect:
		db.mu.RLock()
		ls, ok := db.links[op.name]
		db.mu.RUnlock()
		if !ok {
			return fmt.Errorf("unknown link type %q", op.name)
		}
		if _, err := ls.applyConnect(op.a, op.b, ts); err != nil {
			return err
		}
		db.stats.LinksConnected.Add(1)
	case walOpDisconnect:
		db.mu.RLock()
		ls, ok := db.links[op.name]
		db.mu.RUnlock()
		if !ok {
			return fmt.Errorf("unknown link type %q", op.name)
		}
		if removed, _ := ls.applyDisconnect(op.a, op.b, ts); removed {
			db.stats.LinksDropped.Add(1)
		}
	case walOpAtomType:
		desc, err := model.NewDesc(op.attrs...)
		if err != nil {
			return err
		}
		_, err = db.defineAtomType(op.name, desc)
		return err
	case walOpLinkType:
		_, err := db.defineLinkType(op.name, op.link)
		return err
	case walOpCreateIndex:
		return db.createIndexAt(op.name, op.attr, ts)
	case walOpDropIndex:
		db.dropIndex(op.name, op.attr)
	default:
		return fmt.Errorf("unknown wal op kind %d", op.kind)
	}
	return nil
}

// CheckpointStats summarizes one checkpoint.
type CheckpointStats struct {
	// TS is the commit timestamp the checkpoint captured — every commit
	// at or below it is inside the snapshot.
	TS uint64
	// SegmentsRemoved counts log segments truncated away.
	SegmentsRemoved int
}

// Checkpoint writes a consistent snapshot of the database — pinned at a
// live read view so vacuum cannot reclaim the versions it reads — plus
// the index definitions and histogram states, then truncates the log
// below it. The snapshot is taken at the newest allocated commit: the
// log rotates through the flusher queue first, so every covered record
// is durable (and in a closed segment) before the old segments go away.
// Concurrent commits proceed throughout; they land in the new segment.
func (db *Database) Checkpoint() (CheckpointStats, error) {
	var cs CheckpointStats
	if db.wal == nil {
		return cs, ErrNotDurable
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()

	// Pin and capture under the commit mutex: the timestamp, the schema's
	// type lists, the index definitions and the histogram states must all
	// describe the same commit prefix, or replaying the tail would
	// double-apply DDL or drift the statistics.
	db.commitMu.Lock()
	ts := db.lastAlloc
	pin := db.snapshotAt(ts)
	schema := db.schema
	atomTypes := schema.AtomTypes()
	linkTypes := schema.LinkTypes()
	db.mu.RLock()
	type ixDef struct{ typeName, attr string }
	ixDefs := make([]ixDef, 0, len(db.indexes))
	for _, ix := range db.indexes {
		ixDefs = append(ixDefs, ixDef{ix.typeName, ix.attr})
	}
	type histDef struct {
		typeName, attr string
		pos            int
		st             stats.State
	}
	histDefs := make([]histDef, 0, len(db.hists))
	for _, ah := range db.hists {
		histDefs = append(histDefs, histDef{ah.typeName, ah.attr, ah.pos, ah.h.State()})
	}
	db.mu.RUnlock()
	rotated, err := db.wal.enqueueRotate()
	db.commitMu.Unlock()
	if err != nil {
		pin.Close()
		return cs, err
	}
	defer pin.Close()
	// The rotation ack means every record ≤ ts is fsynced into a closed
	// segment: once the checkpoint file lands, those segments are
	// redundant.
	if err := <-rotated; err != nil {
		return cs, err
	}
	if db.ckptTestHook != nil {
		db.ckptTestHook()
	}

	tmp := filepath.Join(db.dir, ckptTmpFile)
	f, err := os.Create(tmp)
	if err != nil {
		return cs, err
	}
	w := newSnapWriter(f)
	if w.err == nil {
		_, w.err = w.w.WriteString(ckptMagic)
	}
	w.u64(ts)
	encodeSnapshotSections(w, db, ts, atomTypes, linkTypes)
	w.uvarint(uint64(len(ixDefs)))
	for _, d := range ixDefs {
		w.str(d.typeName)
		w.str(d.attr)
	}
	w.uvarint(uint64(len(histDefs)))
	for _, d := range histDefs {
		w.str(d.typeName)
		w.str(d.attr)
		w.uvarint(uint64(d.pos))
		encodeHistState(w, d.st)
	}
	if err := w.flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return cs, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return cs, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return cs, err
	}
	// The rename is the commit point of the checkpoint: a crash on either
	// side leaves a consistent directory (old checkpoint + longer replay,
	// or new checkpoint + shorter replay).
	if err := os.Rename(tmp, filepath.Join(db.dir, ckptFile)); err != nil {
		os.Remove(tmp)
		return cs, err
	}
	syncDir(db.dir)
	cs.TS = ts

	// Every record ≤ ts lives in a segment below the current one (the
	// rotation barrier ordered it so); drop them.
	segs, err := listWALSegments(db.dir)
	if err != nil {
		return cs, err
	}
	cur := db.wal.Segment()
	for _, seg := range segs {
		if seg >= cur {
			continue
		}
		if err := os.Remove(filepath.Join(db.dir, walSegName(seg))); err != nil {
			return cs, err
		}
		cs.SegmentsRemoved++
	}
	syncDir(db.dir)

	for _, fn := range db.ckptHooks {
		if err := fn(); err != nil {
			return cs, fmt.Errorf("storage: checkpoint hook: %w", err)
		}
	}
	return cs, nil
}

// encodeHistState writes one histogram's exported state.
func encodeHistState(w *snapWriter, st stats.State) {
	encodeValue(w, st.Lower)
	w.uvarint(uint64(len(st.Buckets)))
	for _, b := range st.Buckets {
		encodeValue(w, b.Upper)
		w.u64(uint64(b.Count))
		w.u64(uint64(b.Distinct))
	}
	w.u64(uint64(st.Total))
	w.u64(uint64(st.Nulls))
	w.u64(uint64(st.Drift))
}

// decodeHistState reads one histogram state.
func decodeHistState(r *snapReader) (stats.State, error) {
	var st stats.State
	lower, err := decodeValue(r)
	if err != nil {
		return st, err
	}
	st.Lower = lower
	n := r.uvarint()
	if r.err != nil {
		return st, r.err
	}
	if n > maxSnapStr {
		return st, fmt.Errorf("storage: histogram bucket count %d exceeds limit", n)
	}
	st.Buckets = make([]stats.Bucket, 0, n)
	for i := uint64(0); i < n; i++ {
		upper, err := decodeValue(r)
		if err != nil {
			return st, err
		}
		st.Buckets = append(st.Buckets, stats.Bucket{
			Upper:    upper,
			Count:    int64(r.u64()),
			Distinct: int64(r.u64()),
		})
	}
	st.Total = int64(r.u64())
	st.Nulls = int64(r.u64())
	st.Drift = int64(r.u64())
	return st, r.err
}

// decodeCheckpoint reconstructs a database from a MADCKPT1 file: the
// embedded snapshot installs at the checkpoint timestamp, indexes are
// rebuilt by backfill (cheaper and safer than serializing postings) and
// histograms restore their exact states.
func decodeCheckpoint(in io.Reader) (*Database, uint64, error) {
	r := newSnapReader(in)
	head := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(r.r, head); err != nil {
		return nil, 0, fmt.Errorf("reading header: %w", err)
	}
	if string(head) != ckptMagic {
		return nil, 0, fmt.Errorf("bad magic %q (not a MAD checkpoint?)", head)
	}
	ts := r.u64()
	if r.err != nil {
		return nil, 0, r.err
	}
	db := NewDatabase()
	if err := decodeSnapshotInto(r, db, ts); err != nil {
		return nil, 0, err
	}
	db.latestTS.Store(ts)
	db.lastAlloc = ts

	nIx := r.uvarint()
	for i := uint64(0); i < nIx && r.err == nil; i++ {
		typeName := r.str()
		attr := r.str()
		if r.err != nil {
			break
		}
		if err := db.createIndexAt(typeName, attr, ts); err != nil {
			return nil, 0, err
		}
	}
	nHist := r.uvarint()
	for i := uint64(0); i < nHist && r.err == nil; i++ {
		typeName := r.str()
		attr := r.str()
		pos := int(r.uvarint())
		st, err := decodeHistState(r)
		if err != nil {
			return nil, 0, err
		}
		db.hists[indexKey(typeName, attr)] = &attrHist{
			typeName: typeName,
			attr:     attr,
			pos:      pos,
			h:        stats.FromState(st),
		}
	}
	if r.err != nil {
		return nil, 0, r.err
	}
	return db, ts, nil
}
