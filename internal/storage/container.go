// Package storage implements the occurrence half of a MAD database: atom
// containers (atom-type occurrences), bidirectional link stores (link-type
// occurrences), secondary indexes and the integrity rules the paper calls
// out — symmetric links, no dangling references, cardinality restrictions
// (Section 3.1). Together with a catalog.Schema it realizes the "atom
// networks" that molecule derivation is laid over.
package storage

import (
	"fmt"

	"mad/internal/model"
)

// Container holds the occurrence of one atom type: a set of atoms in
// stable insertion order with O(1) lookup by identifier.
//
// A container may hold atoms whose identifiers were issued by *another*
// atom type: the propagation operator (Definition 9) installs renamed
// result types whose occurrences are restricted subsets of existing
// occurrences — the very same atoms, so subobject sharing stays literal.
// Only natively inserted atoms draw fresh identifiers from this
// container's sequence.
type Container struct {
	typeName string
	num      model.TypeNum
	desc     *model.Desc

	atoms []model.Atom         // dense, insertion-ordered
	index map[model.AtomID]int // id → position in atoms
	seq   uint64               // last issued native sequence number
}

// NewContainer creates an empty container for the given atom type.
func NewContainer(typeName string, num model.TypeNum, desc *model.Desc) *Container {
	return &Container{
		typeName: typeName,
		num:      num,
		desc:     desc,
		index:    make(map[model.AtomID]int),
	}
}

// TypeName returns the owning atom type's name.
func (c *Container) TypeName() string { return c.typeName }

// Desc returns the owning atom type's description.
func (c *Container) Desc() *model.Desc { return c.desc }

// Len returns the number of atoms in the occurrence.
func (c *Container) Len() int { return len(c.atoms) }

// Insert validates the values against the description, issues a fresh
// identifier and stores the atom. It returns the new identifier.
func (c *Container) Insert(vals []model.Value) (model.AtomID, error) {
	if c.seq >= model.MaxSeq {
		return 0, fmt.Errorf("storage: atom type %q exhausted its identifier space", c.typeName)
	}
	id := model.MakeAtomID(c.num, c.seq+1)
	a := model.NewAtom(id, vals...).Widened(c.desc)
	if err := a.Conforms(c.desc); err != nil {
		return 0, err
	}
	c.seq++
	c.index[id] = len(c.atoms)
	c.atoms = append(c.atoms, a)
	return id, nil
}

// Adopt stores an atom under its existing identifier, as propagation and
// snapshot loading require. Duplicate identifiers are errors.
func (c *Container) Adopt(a model.Atom) error {
	if !a.ID.Valid() {
		return fmt.Errorf("storage: cannot adopt atom with invalid id into %q", c.typeName)
	}
	if _, dup := c.index[a.ID]; dup {
		return fmt.Errorf("storage: atom %v already present in %q", a.ID, c.typeName)
	}
	a = a.Widened(c.desc)
	if err := a.Conforms(c.desc); err != nil {
		return err
	}
	if a.ID.TypeNum() == c.num && a.ID.Seq() > c.seq {
		c.seq = a.ID.Seq() // keep native sequence ahead of loaded atoms
	}
	c.index[a.ID] = len(c.atoms)
	c.atoms = append(c.atoms, a)
	return nil
}

// Get returns the atom with the given identifier.
func (c *Container) Get(id model.AtomID) (model.Atom, bool) {
	i, ok := c.index[id]
	if !ok {
		return model.Atom{}, false
	}
	return c.atoms[i], true
}

// Has reports whether the identifier is present.
func (c *Container) Has(id model.AtomID) bool {
	_, ok := c.index[id]
	return ok
}

// Delete removes the atom, preserving the insertion order of the rest.
func (c *Container) Delete(id model.AtomID) bool {
	i, ok := c.index[id]
	if !ok {
		return false
	}
	copy(c.atoms[i:], c.atoms[i+1:])
	c.atoms = c.atoms[:len(c.atoms)-1]
	delete(c.index, id)
	for j := i; j < len(c.atoms); j++ {
		c.index[c.atoms[j].ID] = j
	}
	return true
}

// Update replaces the values of an existing atom after validation.
func (c *Container) Update(id model.AtomID, vals []model.Value) error {
	i, ok := c.index[id]
	if !ok {
		return fmt.Errorf("storage: atom %v not in %q", id, c.typeName)
	}
	a := model.NewAtom(id, vals...).Widened(c.desc)
	if err := a.Conforms(c.desc); err != nil {
		return err
	}
	c.atoms[i] = a
	return nil
}

// Scan calls fn for every atom in insertion order; fn returning false
// stops the scan early.
func (c *Container) Scan(fn func(model.Atom) bool) {
	for _, a := range c.atoms {
		if !fn(a) {
			return
		}
	}
}

// IDs returns the identifiers of all atoms in insertion order.
func (c *Container) IDs() []model.AtomID {
	ids := make([]model.AtomID, len(c.atoms))
	for i, a := range c.atoms {
		ids[i] = a.ID
	}
	return ids
}

// Atoms returns a copy of the occurrence in insertion order.
func (c *Container) Atoms() []model.Atom {
	out := make([]model.Atom, len(c.atoms))
	for i, a := range c.atoms {
		out[i] = a.Clone()
	}
	return out
}
