// Package storage implements the occurrence half of a MAD database: atom
// containers (atom-type occurrences), bidirectional link stores (link-type
// occurrences), secondary indexes and the integrity rules the paper calls
// out — symmetric links, no dangling references, cardinality restrictions
// (Section 3.1). Together with a catalog.Schema it realizes the "atom
// networks" that molecule derivation is laid over.
//
// Since the MVCC refactor every occurrence is versioned: each atom, link
// partner list and index posting is the head of an immutable version chain
// stamped with the commit timestamp that installed it. Readers resolve a
// chain against a timestamp — either the database's published commit
// timestamp (the "latest" view every legacy method serves) or a pinned
// Snapshot — and therefore never block behind writers; writers serialize
// on the database's commit mutex and publish atomically by advancing the
// shared clock.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mad/internal/model"
)

// verAtom is one version of an atom: the value it had from commit ts
// until the next version's commit, or a tombstone when deleted is set.
// Nodes are immutable once linked into a chain — mutation pushes a new
// head — except for prev, which vacuum severs under the write latch.
type verAtom struct {
	atom    model.Atom
	ts      uint64
	deleted bool
	prev    *verAtom
}

// visibleAtom resolves a chain against a read timestamp: the newest
// version whose commit timestamp is ≤ ts. ok=false when the atom did not
// exist (or was deleted) at that time.
func visibleAtom(v *verAtom, ts uint64) (model.Atom, bool) {
	for ; v != nil; v = v.prev {
		if v.ts <= ts {
			if v.deleted {
				return model.Atom{}, false
			}
			return v.atom, true
		}
	}
	return model.Atom{}, false
}

// Container holds the occurrence of one atom type: a set of atoms in
// stable insertion order with O(1) lookup by identifier, versioned so
// concurrent snapshots each see a consistent membership.
//
// A container may hold atoms whose identifiers were issued by *another*
// atom type: the propagation operator (Definition 9) installs renamed
// result types whose occurrences are restricted subsets of existing
// occurrences — the very same atoms, so subobject sharing stays literal.
// Only natively inserted atoms draw fresh identifiers from this
// container's sequence.
type Container struct {
	typeName string
	num      model.TypeNum
	desc     *model.Desc
	clock    *atomic.Uint64 // published commit timestamp (shared with the database)

	latch sync.RWMutex
	order []model.AtomID            // append-only insertion order; may hold vacuumed ids
	index map[model.AtomID]*verAtom // id → newest version
	seq   uint64                    // last issued native sequence number
	live  int                       // atoms visible at the newest version heads
}

// NewContainer creates an empty container for the given atom type. A
// standalone container owns a private clock; the database rebinds it to
// the shared commit clock on registration.
func NewContainer(typeName string, num model.TypeNum, desc *model.Desc) *Container {
	clock := new(atomic.Uint64)
	clock.Store(1)
	return &Container{
		typeName: typeName,
		num:      num,
		desc:     desc,
		clock:    clock,
		index:    make(map[model.AtomID]*verAtom),
	}
}

// bindClock attaches the container to the database's published commit
// timestamp so its latest-view methods track commits.
func (c *Container) bindClock(clock *atomic.Uint64) { c.clock = clock }

// TypeName returns the owning atom type's name.
func (c *Container) TypeName() string { return c.typeName }

// Desc returns the owning atom type's description.
func (c *Container) Desc() *model.Desc { return c.desc }

// Len returns the number of atoms in the occurrence at the newest
// versions. Use LenAt for an exact count under a pinned snapshot.
func (c *Container) Len() int {
	c.latch.RLock()
	defer c.latch.RUnlock()
	return c.live
}

// LenAt counts the atoms visible at the given commit timestamp.
func (c *Container) LenAt(ts uint64) int {
	c.latch.RLock()
	defer c.latch.RUnlock()
	n := 0
	for _, id := range c.order {
		if _, ok := visibleAtom(c.index[id], ts); ok {
			n++
		}
	}
	return n
}

// allocID reserves a fresh native identifier. Buffered transactions call
// this at buffer time so the caller learns the identifier before commit;
// an aborted transaction burns the reserved sequence number, which is
// harmless (identifiers need only be unique, not dense).
func (c *Container) allocID() (model.AtomID, error) {
	c.latch.Lock()
	defer c.latch.Unlock()
	if c.seq >= model.MaxSeq {
		return 0, fmt.Errorf("storage: atom type %q exhausted its identifier space", c.typeName)
	}
	c.seq++
	return model.MakeAtomID(c.num, c.seq), nil
}

// validate widens and checks vals against the description, returning the
// stored form of the atom.
func (c *Container) validate(id model.AtomID, vals []model.Value) (model.Atom, error) {
	a := model.NewAtom(id, vals...).Widened(c.desc)
	if err := a.Conforms(c.desc); err != nil {
		return model.Atom{}, err
	}
	return a, nil
}

// applyPut installs a version of the atom at commit timestamp ts: a fresh
// insertion when the identifier has no live head, an update otherwise.
// The returned undo pops the pushed version; callers hold the database's
// commit mutex so at most one commit mutates the chain at a time.
func (c *Container) applyPut(a model.Atom, ts uint64) (undo func()) {
	c.latch.Lock()
	defer c.latch.Unlock()
	old := c.index[a.ID]
	c.index[a.ID] = &verAtom{atom: a, ts: ts, prev: old}
	wasLive := old != nil && !old.deleted
	if !wasLive {
		c.live++
	}
	if old == nil {
		c.order = append(c.order, a.ID)
	}
	return func() {
		c.latch.Lock()
		defer c.latch.Unlock()
		if old == nil {
			delete(c.index, a.ID)
			// Undos run in reverse op order under the commit mutex, so the
			// order slot this put appended is the newest one holding a.ID.
			for i := len(c.order) - 1; i >= 0; i-- {
				if c.order[i] == a.ID {
					c.order = append(c.order[:i], c.order[i+1:]...)
					break
				}
			}
		} else {
			c.index[a.ID] = old
		}
		if !wasLive {
			c.live--
		}
	}
}

// applyAdopt installs an atom under its existing identifier at ts — the
// propagation / snapshot-loading path. Duplicate identifiers are errors.
func (c *Container) applyAdopt(a model.Atom, ts uint64) (undo func(), err error) {
	c.latch.RLock()
	head, dup := c.index[a.ID]
	c.latch.RUnlock()
	if dup && !head.deleted {
		return nil, fmt.Errorf("storage: atom %v already present in %q", a.ID, c.typeName)
	}
	c.latch.Lock()
	if a.ID.TypeNum() == c.num && a.ID.Seq() > c.seq {
		c.seq = a.ID.Seq() // keep native sequence ahead of loaded atoms
	}
	c.latch.Unlock()
	return c.applyPut(a, ts), nil
}

// syncSeq keeps the native sequence ahead of an externally supplied
// identifier — the snapshot-load and WAL-replay paths install atoms with
// identifiers issued by a previous process life, and fresh allocations
// must not collide with them.
func (c *Container) syncSeq(id model.AtomID) {
	c.latch.Lock()
	if id.TypeNum() == c.num && id.Seq() > c.seq {
		c.seq = id.Seq()
	}
	c.latch.Unlock()
}

// applyDelete installs a tombstone at ts. It errs when the atom has no
// live newest version.
func (c *Container) applyDelete(id model.AtomID, ts uint64) (undo func(), err error) {
	c.latch.Lock()
	defer c.latch.Unlock()
	old := c.index[id]
	if old == nil || old.deleted {
		return nil, fmt.Errorf("storage: atom %v not in %q", id, c.typeName)
	}
	c.index[id] = &verAtom{ts: ts, deleted: true, prev: old}
	c.live--
	return func() {
		c.latch.Lock()
		defer c.latch.Unlock()
		c.index[id] = old
		c.live++
	}, nil
}

// Get returns the atom with the given identifier at the latest published
// commit.
func (c *Container) Get(id model.AtomID) (model.Atom, bool) {
	return c.GetAt(id, c.clock.Load())
}

// GetAt returns the atom visible at the given commit timestamp.
func (c *Container) GetAt(id model.AtomID, ts uint64) (model.Atom, bool) {
	c.latch.RLock()
	defer c.latch.RUnlock()
	return visibleAtom(c.index[id], ts)
}

// Has reports whether the identifier is present at the latest commit.
func (c *Container) Has(id model.AtomID) bool {
	return c.HasAt(id, c.clock.Load())
}

// HasAt reports whether the identifier is visible at ts.
func (c *Container) HasAt(id model.AtomID, ts uint64) bool {
	c.latch.RLock()
	defer c.latch.RUnlock()
	_, ok := visibleAtom(c.index[id], ts)
	return ok
}

// Scan calls fn for every atom in insertion order at the latest commit;
// fn returning false stops the scan early.
func (c *Container) Scan(fn func(model.Atom) bool) {
	c.ScanAt(c.clock.Load(), fn)
}

// ScanAt iterates the atoms visible at ts in insertion order. The visible
// set is captured under the read latch and fn runs outside it, so fn may
// freely re-enter the storage layer.
func (c *Container) ScanAt(ts uint64, fn func(model.Atom) bool) {
	for _, a := range c.AtomsAt(ts) {
		if !fn(a) {
			return
		}
	}
}

// IDs returns the identifiers of all atoms in insertion order at the
// latest commit.
func (c *Container) IDs() []model.AtomID {
	return c.IDsAt(c.clock.Load())
}

// IDsAt returns the identifiers visible at ts in insertion order.
func (c *Container) IDsAt(ts uint64) []model.AtomID {
	c.latch.RLock()
	defer c.latch.RUnlock()
	ids := make([]model.AtomID, 0, c.live)
	for _, id := range c.order {
		if _, ok := visibleAtom(c.index[id], ts); ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// Atoms returns a copy of the occurrence in insertion order at the latest
// commit.
func (c *Container) Atoms() []model.Atom {
	return c.AtomsAt(c.clock.Load())
}

// AtomsAt returns the atoms visible at ts in insertion order.
func (c *Container) AtomsAt(ts uint64) []model.Atom {
	c.latch.RLock()
	defer c.latch.RUnlock()
	out := make([]model.Atom, 0, c.live)
	for _, id := range c.order {
		if a, ok := visibleAtom(c.index[id], ts); ok {
			out = append(out, a)
		}
	}
	return out
}

// versionCount reports the total number of version nodes in all chains —
// the leak-check metric vacuum tests compare before and after.
func (c *Container) versionCount() int {
	c.latch.RLock()
	defer c.latch.RUnlock()
	n := 0
	for _, head := range c.index {
		for v := head; v != nil; v = v.prev {
			n++
		}
	}
	return n
}

// chainStats reports the occurrence's version-chain pressure: number of
// chains, total version nodes and the longest chain.
func (c *Container) chainStats() (chains, nodes, maxLen int) {
	c.latch.RLock()
	defer c.latch.RUnlock()
	for _, head := range c.index {
		n := 0
		for v := head; v != nil; v = v.prev {
			n++
		}
		chains++
		nodes += n
		if n > maxLen {
			maxLen = n
		}
	}
	return chains, nodes, maxLen
}

// vacuum truncates every chain below the horizon: the newest version at
// or below horizon becomes the chain's tail, and identifiers whose entire
// visible history at the horizon is a tombstone are removed outright. It
// returns the number of version nodes reclaimed.
func (c *Container) vacuum(horizon uint64) int {
	c.latch.Lock()
	defer c.latch.Unlock()
	reclaimed := 0
	newOrder := c.order[:0:0]
	for _, id := range c.order {
		head := c.index[id]
		if head == nil {
			continue // popped by an aborted commit; drop the order slot
		}
		// Find the newest version at or below the horizon.
		var anchor *verAtom
		for v := head; v != nil; v = v.prev {
			if v.ts <= horizon {
				anchor = v
				break
			}
		}
		if anchor != nil {
			for v := anchor.prev; v != nil; v = v.prev {
				reclaimed++
			}
			anchor.prev = nil
			if anchor == head && anchor.deleted {
				delete(c.index, id)
				reclaimed++
				continue
			}
		}
		newOrder = append(newOrder, id)
	}
	c.order = newOrder
	return reclaimed
}
