package storage_test

import (
	"testing"

	"mad/internal/model"
	"mad/internal/storage"
)

func analyzeFixture(t *testing.T) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	desc := model.MustDesc(
		model.AttrDesc{Name: "name", Kind: model.KString},
		model.AttrDesc{Name: "size", Kind: model.KInt},
	)
	if _, err := db.DefineAtomType("part", desc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 90; i++ {
		if _, err := db.InsertAtom("part", model.Str("common"), model.Int(0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := db.InsertAtom("part", model.Str("rare"), model.Int(int64(1+i))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestAnalyzeBuildsHistograms(t *testing.T) {
	db := analyzeFixture(t)
	n, err := db.Analyze("part")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Analyze built %d histograms, want 2 (one per attribute)", n)
	}
	h, ok := db.Histogram("part", "size")
	if !ok {
		t.Fatal("no histogram on part.size")
	}
	if est := h.EstimateEq(model.Int(0)); est < 80 {
		t.Fatalf("EstimateEq(size=0) = %d, want ≈90 (skew must be visible)", est)
	}
	if got := db.Histograms(); len(got) != 2 || got[0] != "part.name" || got[1] != "part.size" {
		t.Fatalf("Histograms() = %v", got)
	}
	if _, err := db.Analyze("nosuch"); err == nil {
		t.Fatal("Analyze of an unknown type must fail")
	}
	// A partially valid request fails atomically: nothing is installed,
	// so cached plans stay consistent with the statistics they saw.
	epoch := db.PlanEpoch()
	if _, err := db.Analyze("part", "nosuch"); err == nil {
		t.Fatal("Analyze with an unknown type in the list must fail")
	}
	if db.PlanEpoch() != epoch {
		t.Fatal("failed Analyze must not bump the plan epoch")
	}
	if len(db.Histograms()) != 2 {
		t.Fatalf("failed Analyze must not install histograms: %v", db.Histograms())
	}
}

func TestAnalyzeIncrementalMaintenance(t *testing.T) {
	db := analyzeFixture(t)
	if _, err := db.Analyze(); err != nil { // all types
		t.Fatal(err)
	}
	h, _ := db.Histogram("part", "size")
	before := h.Total()

	id, err := db.InsertAtom("part", model.Str("new"), model.Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != before+1 {
		t.Fatalf("insert not routed into histogram: total %d, want %d", h.Total(), before+1)
	}
	if err := db.UpdateAtom("part", id, []model.Value{model.Str("new"), model.Int(5)}); err != nil {
		t.Fatal(err)
	}
	if h.Total() != before+1 {
		t.Fatalf("update changed total: %d", h.Total())
	}
	if _, err := db.DeleteAtom("part", id); err != nil {
		t.Fatal(err)
	}
	if h.Total() != before {
		t.Fatalf("delete not routed into histogram: total %d, want %d", h.Total(), before)
	}
	if h.Drift() == 0 {
		t.Fatal("incremental maintenance must record drift")
	}
}

// TestAutoAnalyzeOnDrift checks ANALYZE-on-drift: once incremental
// mutations exceed the configured fraction of an occurrence, the type's
// histograms rebuild on their own and the plan epoch bumps; below the
// threshold (or with the feature disabled) nothing happens.
func TestAutoAnalyzeOnDrift(t *testing.T) {
	db := analyzeFixture(t) // 100 atoms
	if _, err := db.Analyze("part"); err != nil {
		t.Fatal(err)
	}
	h, _ := db.Histogram("part", "size")
	epoch := db.PlanEpoch()

	// A few mutations stay under the default 20% threshold: the drift
	// accumulates, the epoch holds, cached plans stay valid.
	for i := 0; i < 10; i++ {
		if _, err := db.InsertAtom("part", model.Str("new"), model.Int(99)); err != nil {
			t.Fatal(err)
		}
	}
	if db.PlanEpoch() != epoch {
		t.Fatal("sub-threshold drift must not bump the plan epoch")
	}
	if h.Drift() != 10 {
		t.Fatalf("drift = %d, want 10", h.Drift())
	}

	// Crossing the threshold rebuilds: fresh histograms (drift resets),
	// a bumped epoch, and the rebuild shows up in the stats block.
	before := db.Stats().Snapshot()
	for i := 0; i < 30; i++ {
		if _, err := db.InsertAtom("part", model.Str("new"), model.Int(99)); err != nil {
			t.Fatal(err)
		}
	}
	h2, _ := db.Histogram("part", "size")
	if h2.Drift() >= 30 {
		t.Fatalf("drift = %d after crossing the threshold, want a rebuilt histogram", h2.Drift())
	}
	if db.PlanEpoch() == epoch {
		t.Fatal("auto-ANALYZE must bump the plan epoch")
	}
	if db.Stats().Snapshot().AutoAnalyzes <= before.AutoAnalyzes {
		t.Fatal("auto-ANALYZE must be counted in the stats block")
	}
	// The rebuilt histogram sees the inserted skew directly.
	if est := h2.EstimateEq(model.Int(99)); est < 20 {
		t.Fatalf("rebuilt histogram estimates %d atoms at size=99, want ≈40", est)
	}

	// Disabled: drift accumulates without bound and the epoch holds.
	db.SetAutoAnalyze(0)
	epoch = db.PlanEpoch()
	h3, _ := db.Histogram("part", "size")
	d0 := h3.Drift()
	for i := 0; i < 200; i++ {
		if _, err := db.InsertAtom("part", model.Str("more"), model.Int(5)); err != nil {
			t.Fatal(err)
		}
	}
	if db.PlanEpoch() != epoch {
		t.Fatal("disabled auto-ANALYZE must never bump the plan epoch")
	}
	if h3.Drift() != d0+200 {
		t.Fatalf("disabled auto-ANALYZE must leave drift accumulating (drift = %d, want %d)", h3.Drift(), d0+200)
	}
}

// TestLinkDriftBumpsPlanEpoch checks the staleness policy for link fan
// statistics: plans cost traversals from the link stores, so enough link
// churn must invalidate cached plans even though no histogram moved.
func TestLinkDriftBumpsPlanEpoch(t *testing.T) {
	db := storage.NewDatabase()
	desc := model.MustDesc(model.AttrDesc{Name: "v", Kind: model.KInt})
	for _, tn := range []string{"a", "b"} {
		if _, err := db.DefineAtomType(tn, desc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.DefineLinkType("ab", model.LinkDesc{SideA: "a", SideB: "b"}); err != nil {
		t.Fatal(err)
	}
	var as, bs []model.AtomID
	for i := 0; i < 40; i++ {
		ai, err := db.InsertAtom("a", model.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		bi, err := db.InsertAtom("b", model.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		as, bs = append(as, ai), append(bs, bi)
	}
	epoch := db.PlanEpoch()
	// A handful of links stay under the drift floor.
	for i := 0; i < 4; i++ {
		if err := db.Connect("ab", as[i], bs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if db.PlanEpoch() != epoch {
		t.Fatal("sub-threshold link churn must not bump the plan epoch")
	}
	// Sustained churn crosses it.
	for i := 4; i < 40; i++ {
		if err := db.Connect("ab", as[i], bs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if db.PlanEpoch() == epoch {
		t.Fatal("link drift must bump the plan epoch (fan statistics went stale)")
	}
	// Disabled along with auto-ANALYZE: no further bumps.
	db.SetAutoAnalyze(0)
	epoch = db.PlanEpoch()
	for i := 0; i < 40; i++ {
		if err := db.Connect("ab", as[i], bs[(i+1)%40]); err != nil {
			t.Fatal(err)
		}
	}
	if db.PlanEpoch() != epoch {
		t.Fatal("disabled drift policy must never bump the plan epoch")
	}
}

func TestPlanEpochBumps(t *testing.T) {
	db := analyzeFixture(t)
	e0 := db.PlanEpoch()
	if err := db.CreateIndex("part", "name"); err != nil {
		t.Fatal(err)
	}
	e1 := db.PlanEpoch()
	if e1 <= e0 {
		t.Fatalf("CREATE INDEX must bump the plan epoch (%d → %d)", e0, e1)
	}
	if _, err := db.Analyze("part"); err != nil {
		t.Fatal(err)
	}
	e2 := db.PlanEpoch()
	if e2 <= e1 {
		t.Fatalf("ANALYZE must bump the plan epoch (%d → %d)", e1, e2)
	}
	if !db.DropIndex("part", "name") {
		t.Fatal("DropIndex")
	}
	if db.PlanEpoch() <= e2 {
		t.Fatal("DROP INDEX must bump the plan epoch")
	}
	// Plain DML does not invalidate plans.
	e3 := db.PlanEpoch()
	if _, err := db.InsertAtom("part", model.Str("x"), model.Int(1)); err != nil {
		t.Fatal(err)
	}
	if db.PlanEpoch() != e3 {
		t.Fatal("INSERT must not bump the plan epoch")
	}
}
