package storage_test

import (
	"testing"

	"mad/internal/model"
	"mad/internal/storage"
)

func analyzeFixture(t *testing.T) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	desc := model.MustDesc(
		model.AttrDesc{Name: "name", Kind: model.KString},
		model.AttrDesc{Name: "size", Kind: model.KInt},
	)
	if _, err := db.DefineAtomType("part", desc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 90; i++ {
		if _, err := db.InsertAtom("part", model.Str("common"), model.Int(0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := db.InsertAtom("part", model.Str("rare"), model.Int(int64(1+i))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestAnalyzeBuildsHistograms(t *testing.T) {
	db := analyzeFixture(t)
	n, err := db.Analyze("part")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Analyze built %d histograms, want 2 (one per attribute)", n)
	}
	h, ok := db.Histogram("part", "size")
	if !ok {
		t.Fatal("no histogram on part.size")
	}
	if est := h.EstimateEq(model.Int(0)); est < 80 {
		t.Fatalf("EstimateEq(size=0) = %d, want ≈90 (skew must be visible)", est)
	}
	if got := db.Histograms(); len(got) != 2 || got[0] != "part.name" || got[1] != "part.size" {
		t.Fatalf("Histograms() = %v", got)
	}
	if _, err := db.Analyze("nosuch"); err == nil {
		t.Fatal("Analyze of an unknown type must fail")
	}
	// A partially valid request fails atomically: nothing is installed,
	// so cached plans stay consistent with the statistics they saw.
	epoch := db.PlanEpoch()
	if _, err := db.Analyze("part", "nosuch"); err == nil {
		t.Fatal("Analyze with an unknown type in the list must fail")
	}
	if db.PlanEpoch() != epoch {
		t.Fatal("failed Analyze must not bump the plan epoch")
	}
	if len(db.Histograms()) != 2 {
		t.Fatalf("failed Analyze must not install histograms: %v", db.Histograms())
	}
}

func TestAnalyzeIncrementalMaintenance(t *testing.T) {
	db := analyzeFixture(t)
	if _, err := db.Analyze(); err != nil { // all types
		t.Fatal(err)
	}
	h, _ := db.Histogram("part", "size")
	before := h.Total()

	id, err := db.InsertAtom("part", model.Str("new"), model.Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != before+1 {
		t.Fatalf("insert not routed into histogram: total %d, want %d", h.Total(), before+1)
	}
	if err := db.UpdateAtom("part", id, []model.Value{model.Str("new"), model.Int(5)}); err != nil {
		t.Fatal(err)
	}
	if h.Total() != before+1 {
		t.Fatalf("update changed total: %d", h.Total())
	}
	if _, err := db.DeleteAtom("part", id); err != nil {
		t.Fatal(err)
	}
	if h.Total() != before {
		t.Fatalf("delete not routed into histogram: total %d, want %d", h.Total(), before)
	}
	if h.Drift() == 0 {
		t.Fatal("incremental maintenance must record drift")
	}
}

func TestPlanEpochBumps(t *testing.T) {
	db := analyzeFixture(t)
	e0 := db.PlanEpoch()
	if err := db.CreateIndex("part", "name"); err != nil {
		t.Fatal(err)
	}
	e1 := db.PlanEpoch()
	if e1 <= e0 {
		t.Fatalf("CREATE INDEX must bump the plan epoch (%d → %d)", e0, e1)
	}
	if _, err := db.Analyze("part"); err != nil {
		t.Fatal(err)
	}
	e2 := db.PlanEpoch()
	if e2 <= e1 {
		t.Fatalf("ANALYZE must bump the plan epoch (%d → %d)", e1, e2)
	}
	if !db.DropIndex("part", "name") {
		t.Fatal("DropIndex")
	}
	if db.PlanEpoch() <= e2 {
		t.Fatal("DROP INDEX must bump the plan epoch")
	}
	// Plain DML does not invalidate plans.
	e3 := db.PlanEpoch()
	if _, err := db.InsertAtom("part", model.Str("x"), model.Int(1)); err != nil {
		t.Fatal(err)
	}
	if db.PlanEpoch() != e3 {
		t.Fatal("INSERT must not bump the plan epoch")
	}
}
