package storage

import (
	"fmt"
	"sort"

	"mad/internal/model"
	"mad/internal/storage/stats"
)

// attrHist binds a histogram to the attribute position it summarizes so
// the mutation paths can route values without a description lookup.
type attrHist struct {
	typeName string
	attr     string
	pos      int
	h        *stats.Histogram
}

// PlanEpoch returns the database's plan epoch: a counter bumped by every
// change that can invalidate a compiled plan — schema DDL, index creation
// or removal, and ANALYZE (new statistics mean new estimates). The plan
// cache compares a cached plan's epoch against this value and recompiles
// on mismatch.
func (db *Database) PlanEpoch() uint64 { return db.planEpoch.Load() }

// bumpPlanEpoch invalidates all cached plans for this database.
func (db *Database) bumpPlanEpoch() { db.planEpoch.Add(1) }

// Analyze builds equi-depth histograms over every attribute of the named
// atom types (all types when none are given), replacing any previous
// histograms, and bumps the plan epoch so cached plans recompile against
// the fresh statistics. It returns the number of histograms built.
func (db *Database) Analyze(typeNames ...string) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(typeNames) == 0 {
		for name := range db.containers {
			typeNames = append(typeNames, name)
		}
		sort.Strings(typeNames)
	}
	// Resolve every name before installing anything: a failed Analyze
	// must not leave new histograms behind without the epoch bump that
	// invalidates the plans costed against the old ones.
	containers := make([]*Container, len(typeNames))
	for i, name := range typeNames {
		c, ok := db.containerByName(name)
		if !ok {
			return 0, fmt.Errorf("storage: unknown atom type %q", name)
		}
		containers[i] = c
	}
	built := 0
	for i, name := range typeNames {
		built += db.analyzeLocked(name, containers[i])
	}
	db.bumpPlanEpoch()
	return built, nil
}

// analyzeLocked rebuilds the histograms of one atom type; callers hold
// db.mu (the container scan resolves the latest published commit, so a
// concurrent writer at most leaves the histogram one commit stale — it is
// advisory, not versioned) and bump the plan epoch themselves.
func (db *Database) analyzeLocked(name string, c *Container) int {
	desc := c.Desc()
	// One pass over the occurrence gathers every attribute column.
	cols := make([][]model.Value, desc.Len())
	for pos := range cols {
		cols[pos] = make([]model.Value, 0, c.Len())
	}
	c.Scan(func(a model.Atom) bool {
		for pos := range cols {
			cols[pos] = append(cols[pos], a.Get(pos))
		}
		return true
	})
	built := 0
	for pos, vals := range cols {
		attr := desc.Attr(pos).Name
		db.hists[indexKey(name, attr)] = &attrHist{
			typeName: name,
			attr:     attr,
			pos:      pos,
			h:        stats.Build(vals, stats.DefaultBuckets),
		}
		built++
	}
	return built
}

// DefaultAutoAnalyzeFraction is the drift threshold installed on new
// databases: a type's histograms rebuild once any of them has absorbed
// incremental mutations exceeding this fraction of the values it
// accounts for.
const DefaultAutoAnalyzeFraction = 0.2

// autoAnalyzeMinDrift keeps tiny occurrences from rebuilding on every
// mutation: auto-ANALYZE never fires below this absolute drift.
const autoAnalyzeMinDrift = 8

// SetAutoAnalyze configures the drift fraction that triggers an automatic
// histogram rebuild after a mutation; frac <= 0 disables auto-ANALYZE
// entirely (statistics then only change under a manual Analyze).
func (db *Database) SetAutoAnalyze(frac float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.autoAnalyzeFrac = frac
}

// maybeAutoAnalyze rebuilds the named type's histograms when any of them
// has drifted past the configured fraction of its occurrence, bumping the
// plan epoch so stale plans recompile against the fresh statistics —
// ANALYZE-on-drift instead of ANALYZE-on-request. Callers hold commitMu
// (the epoch therefore keys off committed state, never an in-flight
// buffer) and have already routed the triggering mutation into the
// histograms; db.mu is taken here for the registry reads and the rebuild.
func (db *Database) maybeAutoAnalyze(typeName string) {
	db.mu.RLock()
	frac := db.autoAnalyzeFrac
	hists := db.histsOf(typeName)
	db.mu.RUnlock()
	if frac <= 0 {
		return
	}
	trigger := false
	for _, ah := range hists {
		drift := ah.h.Drift()
		if drift < autoAnalyzeMinDrift {
			continue
		}
		occ := ah.h.Total() + ah.h.Nulls()
		if float64(drift) > frac*float64(occ) {
			trigger = true
			break
		}
	}
	if !trigger {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.containerByName(typeName)
	if !ok {
		return
	}
	db.analyzeLocked(typeName, c)
	db.bumpPlanEpoch()
	db.stats.AutoAnalyzes.Add(1)
}

// maybeLinkEpochBump bumps the plan epoch once a link occurrence has
// drifted past the auto-analyze fraction since the last bump it caused:
// the planner costs traversals (derivation work, interior-index climbs)
// from the store's fan statistics, so link churn goes stale the same way
// value drift does for histograms. Sharing the auto-analyze fraction
// keeps one staleness policy; frac <= 0 disables this too. The epochBase
// read-modify-write runs under db.mu: since the WAL refactor, commit
// bookkeeping runs outside commitMu, so concurrent committers can reach
// here at once.
func (db *Database) maybeLinkEpochBump(ls *LinkStore) {
	db.mu.RLock()
	frac := db.autoAnalyzeFrac
	db.mu.RUnlock()
	if frac <= 0 {
		return
	}
	count := ls.Len()
	db.mu.Lock()
	defer db.mu.Unlock()
	drift := count - ls.epochBase
	if drift < 0 {
		drift = -drift
	}
	if drift < autoAnalyzeMinDrift {
		return
	}
	if float64(drift) > frac*float64(ls.epochBase) {
		ls.epochBase = count
		db.bumpPlanEpoch()
	}
}

// Histogram returns the histogram over typeName.attr built by the most
// recent Analyze, maintained incrementally since. ok=false when the
// attribute has never been analyzed.
func (db *Database) Histogram(typeName, attr string) (*stats.Histogram, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ah, ok := db.hists[indexKey(typeName, attr)]
	if !ok {
		return nil, false
	}
	return ah.h, true
}

// Histograms lists the analyzed attributes as "type.attr" strings, sorted.
func (db *Database) Histograms() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.hists))
	for k := range db.hists {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// histsOf returns the histograms covering the named atom type; callers
// hold db.mu.
func (db *Database) histsOf(typeName string) []*attrHist {
	var out []*attrHist
	for _, ah := range db.hists {
		if ah.typeName == typeName {
			out = append(out, ah)
		}
	}
	return out
}

// histInsert routes a stored atom's values into the type's histograms.
// Histograms are internally synchronized; only the registry read needs
// db.mu.
func (db *Database) histInsert(typeName string, a model.Atom) {
	db.mu.RLock()
	hists := db.histsOf(typeName)
	db.mu.RUnlock()
	for _, ah := range hists {
		ah.h.Insert(a.Get(ah.pos))
	}
}

// histDelete removes a dropped atom's values from the type's histograms.
func (db *Database) histDelete(typeName string, a model.Atom) {
	db.mu.RLock()
	hists := db.histsOf(typeName)
	db.mu.RUnlock()
	for _, ah := range hists {
		ah.h.Delete(a.Get(ah.pos))
	}
}
