package storage

import (
	"fmt"
	"sort"

	"mad/internal/model"
	"mad/internal/storage/stats"
)

// attrHist binds a histogram to the attribute position it summarizes so
// the mutation paths can route values without a description lookup.
type attrHist struct {
	typeName string
	attr     string
	pos      int
	h        *stats.Histogram
}

// PlanEpoch returns the database's plan epoch: a counter bumped by every
// change that can invalidate a compiled plan — schema DDL, index creation
// or removal, and ANALYZE (new statistics mean new estimates). The plan
// cache compares a cached plan's epoch against this value and recompiles
// on mismatch.
func (db *Database) PlanEpoch() uint64 { return db.planEpoch.Load() }

// bumpPlanEpoch invalidates all cached plans for this database.
func (db *Database) bumpPlanEpoch() { db.planEpoch.Add(1) }

// Analyze builds equi-depth histograms over every attribute of the named
// atom types (all types when none are given), replacing any previous
// histograms, and bumps the plan epoch so cached plans recompile against
// the fresh statistics. It returns the number of histograms built.
func (db *Database) Analyze(typeNames ...string) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(typeNames) == 0 {
		for name := range db.containers {
			typeNames = append(typeNames, name)
		}
		sort.Strings(typeNames)
	}
	// Resolve every name before installing anything: a failed Analyze
	// must not leave new histograms behind without the epoch bump that
	// invalidates the plans costed against the old ones.
	containers := make([]*Container, len(typeNames))
	for i, name := range typeNames {
		c, ok := db.containerByName(name)
		if !ok {
			return 0, fmt.Errorf("storage: unknown atom type %q", name)
		}
		containers[i] = c
	}
	built := 0
	for i, name := range typeNames {
		c := containers[i]
		desc := c.Desc()
		// One pass over the occurrence gathers every attribute column.
		cols := make([][]model.Value, desc.Len())
		for pos := range cols {
			cols[pos] = make([]model.Value, 0, c.Len())
		}
		c.Scan(func(a model.Atom) bool {
			for pos := range cols {
				cols[pos] = append(cols[pos], a.Get(pos))
			}
			return true
		})
		for pos, vals := range cols {
			attr := desc.Attr(pos).Name
			db.hists[indexKey(name, attr)] = &attrHist{
				typeName: name,
				attr:     attr,
				pos:      pos,
				h:        stats.Build(vals, stats.DefaultBuckets),
			}
			built++
		}
	}
	db.bumpPlanEpoch()
	return built, nil
}

// Histogram returns the histogram over typeName.attr built by the most
// recent Analyze, maintained incrementally since. ok=false when the
// attribute has never been analyzed.
func (db *Database) Histogram(typeName, attr string) (*stats.Histogram, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ah, ok := db.hists[indexKey(typeName, attr)]
	if !ok {
		return nil, false
	}
	return ah.h, true
}

// Histograms lists the analyzed attributes as "type.attr" strings, sorted.
func (db *Database) Histograms() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.hists))
	for k := range db.hists {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// histsOf returns the histograms covering the named atom type; callers
// hold db.mu.
func (db *Database) histsOf(typeName string) []*attrHist {
	var out []*attrHist
	for _, ah := range db.hists {
		if ah.typeName == typeName {
			out = append(out, ah)
		}
	}
	return out
}

// histInsert routes a stored atom's values into the type's histograms.
func (db *Database) histInsert(typeName string, a model.Atom) {
	for _, ah := range db.histsOf(typeName) {
		ah.h.Insert(a.Get(ah.pos))
	}
}

// histDelete removes a dropped atom's values from the type's histograms.
func (db *Database) histDelete(typeName string, a model.Atom) {
	for _, ah := range db.histsOf(typeName) {
		ah.h.Delete(a.Get(ah.pos))
	}
}
