package storage

import (
	"fmt"
	"testing"

	"mad/internal/model"
)

// orderedScanKeys collects the values an ordered scan visits, flattening
// posting IDs for membership checks.
func orderedScanKeys(t *testing.T, db *Database, typeName, attr string, ts uint64, desc bool) (vals []model.Value, ids []model.AtomID) {
	t.Helper()
	ok := db.IndexOrderedAt(typeName, attr, ts, desc, func(v model.Value, post []model.AtomID) bool {
		vals = append(vals, v)
		ids = append(ids, post...)
		return true
	})
	if !ok {
		t.Fatalf("IndexOrderedAt(%s.%s): no index", typeName, attr)
	}
	return vals, ids
}

func TestIndexOrderedScan(t *testing.T) {
	db := NewDatabase()
	desc := model.MustDesc(model.AttrDesc{Name: "rank", Kind: model.KInt})
	if _, err := db.DefineAtomType("item", desc); err != nil {
		t.Fatal(err)
	}
	// Shuffled insertion order; rank 3 occurs twice to exercise posting
	// grouping and the ID tiebreak.
	ranks := []int64{5, 1, 3, 9, 3, 7}
	byRank := make(map[int64][]model.AtomID)
	for _, r := range ranks {
		id, err := db.InsertAtom("item", model.Int(r))
		if err != nil {
			t.Fatal(err)
		}
		byRank[r] = append(byRank[r], id)
	}
	if err := db.CreateIndex("item", "rank"); err != nil {
		t.Fatal(err)
	}
	ts := db.LatestTS()

	vals, _ := orderedScanKeys(t, db, "item", "rank", ts, false)
	wantAsc := []int64{1, 3, 5, 7, 9}
	if len(vals) != len(wantAsc) {
		t.Fatalf("ascending scan visited %d keys, want %d", len(vals), len(wantAsc))
	}
	for i, w := range wantAsc {
		if got, _ := vals[i].AsInt(); got != w {
			t.Fatalf("ascending scan key %d = %v, want %d", i, vals[i], w)
		}
	}
	dvals, _ := orderedScanKeys(t, db, "item", "rank", ts, true)
	for i := range dvals {
		if !dvals[i].Equal(vals[len(vals)-1-i]) {
			t.Fatalf("descending scan is not the reverse at %d: %v", i, dvals[i])
		}
	}

	// Postings for the duplicated key hold both atoms, ID-ascending.
	db.IndexOrderedAt("item", "rank", ts, false, func(v model.Value, post []model.AtomID) bool {
		if r, _ := v.AsInt(); r == 3 {
			if len(post) != 2 || post[0] >= post[1] {
				t.Fatalf("rank 3 posting = %v, want both atoms ID-ascending", post)
			}
		}
		return true
	})

	// MVCC: a new key committed after ts stays invisible to the old scan
	// but appears, in place, to a fresh one.
	if _, err := db.InsertAtom("item", model.Int(2)); err != nil {
		t.Fatal(err)
	}
	if vals2, _ := orderedScanKeys(t, db, "item", "rank", ts, false); len(vals2) != len(wantAsc) {
		t.Fatalf("old-ts scan sees %d keys after later insert, want %d", len(vals2), len(wantAsc))
	}
	now := db.LatestTS()
	vals3, _ := orderedScanKeys(t, db, "item", "rank", now, false)
	if len(vals3) != len(wantAsc)+1 {
		t.Fatalf("fresh scan sees %d keys, want %d", len(vals3), len(wantAsc)+1)
	}
	if got, _ := vals3[1].AsInt(); got != 2 {
		t.Fatalf("fresh scan key 1 = %v, want 2", vals3[1])
	}

	// Deleting the only rank-9 atom empties its posting for new scans
	// while the pinned timestamp keeps seeing it; after every snapshot is
	// gone, vacuum drops the dead key from the ordered view.
	if _, err := db.DeleteAtom("item", byRank[9][0]); err != nil {
		t.Fatal(err)
	}
	if vals4, _ := orderedScanKeys(t, db, "item", "rank", db.LatestTS(), false); len(vals4) != len(wantAsc) {
		t.Fatalf("post-delete scan sees %d keys, want %d", len(vals4), len(wantAsc))
	}
	if vals5, _ := orderedScanKeys(t, db, "item", "rank", ts, false); len(vals5) != len(wantAsc) {
		t.Fatalf("pinned-ts scan sees %d keys after delete, want %d", len(vals5), len(wantAsc))
	}
	db.Vacuum()
	found := false
	db.IndexOrderedAt("item", "rank", db.LatestTS(), false, func(v model.Value, _ []model.AtomID) bool {
		if r, _ := v.AsInt(); r == 9 {
			found = true
		}
		return true
	})
	if found {
		t.Fatal("vacuumed key 9 still visited by ordered scan")
	}
}

func TestIndexOrderedScanStrings(t *testing.T) {
	db := NewDatabase()
	desc := model.MustDesc(model.AttrDesc{Name: "code", Kind: model.KString})
	if _, err := db.DefineAtomType("asm", desc); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("asm", "code"); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{3, 0, 2, 1} {
		if _, err := db.InsertAtom("asm", model.Str(fmt.Sprintf("C%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	vals, ids := orderedScanKeys(t, db, "asm", "code", db.LatestTS(), false)
	if len(vals) != 4 || len(ids) != 4 {
		t.Fatalf("scan visited %d keys / %d ids, want 4 / 4", len(vals), len(ids))
	}
	for i := 1; i < len(vals); i++ {
		if vals[i-1].Compare(vals[i]) >= 0 {
			t.Fatalf("keys out of order at %d: %v >= %v", i, vals[i-1], vals[i])
		}
	}
	if db.IndexOrderedAt("asm", "nope", db.LatestTS(), false, nil) {
		t.Fatal("ordered scan over missing index reported ok")
	}
}
