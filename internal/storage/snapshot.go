package storage

import (
	"fmt"
	"sync/atomic"

	"mad/internal/catalog"
	"mad/internal/model"
)

// Snapshot is an immutable, consistent read view of the database: every
// read through it resolves version chains against the commit timestamp
// that was published when the snapshot was taken. Snapshots never block
// behind writers and writers never block behind snapshots; a live
// snapshot only holds the vacuum horizon back, so Close it when done.
// A Snapshot is safe for concurrent use by multiple goroutines; Close is
// idempotent.
type Snapshot struct {
	db     *Database
	ts     uint64
	closed atomic.Bool
}

// Snapshot pins the latest published commit as an immutable read view.
func (db *Database) Snapshot() *Snapshot {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	ts := db.latestTS.Load()
	db.liveSnaps[ts]++
	return &Snapshot{db: db, ts: ts}
}

// snapshotAt registers a view at an already-pinned timestamp (transaction
// begin shares the registration path).
func (db *Database) snapshotAt(ts uint64) *Snapshot {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	db.liveSnaps[ts]++
	return &Snapshot{db: db, ts: ts}
}

// Close releases the snapshot's pin on its versions, letting vacuum
// reclaim them once no other snapshot needs them. Reads after Close still
// resolve, but may observe reclaimed (newer-truncated) state; don't.
func (s *Snapshot) Close() {
	if s.closed.Swap(true) {
		return
	}
	db := s.db
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	if n := db.liveSnaps[s.ts]; n > 1 {
		db.liveSnaps[s.ts] = n - 1
	} else {
		delete(db.liveSnaps, s.ts)
	}
}

// TS returns the commit timestamp the snapshot is pinned to.
func (s *Snapshot) TS() uint64 { return s.ts }

// DB returns the underlying database (for registry-level lookups that
// are not versioned, such as schema access).
func (s *Snapshot) DB() *Database { return s.db }

// Schema exposes the catalog. Schema definition is not versioned; the
// snapshot sees the current schema with occurrences as of its timestamp.
func (s *Snapshot) Schema() *catalog.Schema { return s.db.Schema() }

// Container resolves the container of an atom type; read it with the *At
// methods using this snapshot's TS.
func (s *Snapshot) Container(name string) (*Container, bool) { return s.db.Container(name) }

// LinkStore resolves the store of a link type.
func (s *Snapshot) LinkStore(name string) (*LinkStore, bool) { return s.db.LinkStore(name) }

// GetAtom fetches one atom of the named type as of the snapshot.
func (s *Snapshot) GetAtom(typeName string, id model.AtomID) (model.Atom, bool) {
	return s.db.GetAtomAt(typeName, id, s.ts)
}

// HasAtom reports whether the named type's occurrence contains id as of
// the snapshot.
func (s *Snapshot) HasAtom(typeName string, id model.AtomID) bool {
	c, ok := s.db.Container(typeName)
	return ok && c.HasAt(id, s.ts)
}

// ResolveAtom finds the atom by identifier in its native type.
func (s *Snapshot) ResolveAtom(id model.AtomID) (model.Atom, string, bool) {
	return s.db.ResolveAtomAt(id, s.ts)
}

// ScanAtoms iterates the named type's occurrence in insertion order.
func (s *Snapshot) ScanAtoms(typeName string, fn func(model.Atom) bool) error {
	return s.db.ScanAtomsAt(typeName, s.ts, fn)
}

// Partners returns the atoms linked to id through the named link type as
// of the snapshot. The returned slice is an immutable version; callers
// must not mutate it.
func (s *Snapshot) Partners(linkName string, id model.AtomID, fromSideA bool) ([]model.AtomID, error) {
	return s.db.PartnersAt(linkName, id, fromSideA, s.ts)
}

// IndexLookup consults the index over typeName.attr as of the snapshot.
func (s *Snapshot) IndexLookup(typeName, attr string, v model.Value) ([]model.AtomID, bool) {
	return s.db.IndexLookupAt(typeName, attr, v, s.ts)
}

// CountAtoms returns the named atom type's occurrence size as of the
// snapshot (an exact count, unlike the latest view's head-state counter).
func (s *Snapshot) CountAtoms(typeName string) (int, error) {
	c, ok := s.db.Container(typeName)
	if !ok {
		return 0, fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	return c.LenAt(s.ts), nil
}

// CountLinks returns the named link type's occurrence size as of the
// snapshot.
func (s *Snapshot) CountLinks(linkName string) (int, error) {
	ls, ok := s.db.LinkStore(linkName)
	if !ok {
		return 0, fmt.Errorf("storage: unknown link type %q", linkName)
	}
	return ls.LenAt(s.ts), nil
}

// TotalAtoms returns the number of atoms across all atom types as of the
// snapshot.
func (s *Snapshot) TotalAtoms() int {
	db := s.db
	db.mu.RLock()
	containers := make([]*Container, 0, len(db.containers))
	for _, c := range db.containers {
		containers = append(containers, c)
	}
	db.mu.RUnlock()
	n := 0
	for _, c := range containers {
		n += c.LenAt(s.ts)
	}
	return n
}

// TotalLinks returns the number of links across all link types as of the
// snapshot.
func (s *Snapshot) TotalLinks() int {
	db := s.db
	db.mu.RLock()
	stores := make([]*LinkStore, 0, len(db.links))
	for _, ls := range db.links {
		stores = append(stores, ls)
	}
	db.mu.RUnlock()
	n := 0
	for _, ls := range stores {
		n += ls.LenAt(s.ts)
	}
	return n
}

// oldestLiveSnapshot returns the smallest pinned snapshot timestamp and
// whether any snapshot is live.
func (db *Database) oldestLiveSnapshot() (uint64, bool) {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	var min uint64
	found := false
	for ts := range db.liveSnaps {
		if !found || ts < min {
			min = ts
			found = true
		}
	}
	return min, found
}

// LiveSnapshots reports how many snapshot pins are currently registered
// (transactions pin their begin snapshot too).
func (db *Database) LiveSnapshots() int {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	n := 0
	for _, c := range db.liveSnaps {
		n += c
	}
	return n
}
