package storage

import (
	"testing"
	"time"

	"mad/internal/model"
)

// waitAutoCkpt polls until the database has completed n auto-checkpoints
// (the trigger runs off the flusher goroutine).
func waitAutoCkpt(t *testing.T, db *Database, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if db.AutoCheckpoints() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("auto-checkpoint #%d did not fire (have %d, live=%d bytes)", n, db.AutoCheckpoints(), db.LiveWALBytes())
}

// TestAutoCheckpointFiresOncePerCrossing drives the live log over the
// SetAutoCheckpoint threshold and asserts exactly one checkpoint fires
// per crossing: crossing once fires once no matter how far past the
// threshold the log runs, the completed checkpoint resets the live
// counter, and only a fresh crossing fires again.
func TestAutoCheckpointFiresOncePerCrossing(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := model.MustDesc(model.AttrDesc{Name: "n", Kind: model.KInt})
	if _, err := db.DefineAtomType("t", d); err != nil {
		t.Fatal(err)
	}

	const limit = 4096
	if err := db.SetAutoCheckpoint(limit); err != nil {
		t.Fatal(err)
	}
	insert := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := db.InsertAtom("t", model.Int(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	// cross inserts until the live log reaches the threshold, then stops
	// — so the writes landing after the triggered checkpoint's rotation
	// are deterministically zero and cannot form a second crossing.
	cross := func() {
		t.Helper()
		for db.LiveWALBytes() < limit {
			insert(1)
		}
	}

	// Stay below the threshold: nothing fires.
	insert(8)
	if db.LiveWALBytes() >= limit {
		t.Fatalf("sanity: %d live bytes already over the %d threshold", db.LiveWALBytes(), limit)
	}
	time.Sleep(10 * time.Millisecond)
	if n := db.AutoCheckpoints(); n != 0 {
		t.Fatalf("checkpoint fired below the threshold: %d", n)
	}

	// Cross once: one checkpoint.
	cross()
	waitAutoCkpt(t, db, 1)
	if n := db.AutoCheckpoints(); n != 1 {
		t.Fatalf("first crossing fired %d checkpoints", n)
	}
	// The checkpoint's rotation reset the live region; a few more small
	// commits must not re-fire.
	insert(8)
	time.Sleep(10 * time.Millisecond)
	if n := db.AutoCheckpoints(); n != 1 {
		t.Fatalf("re-fired below the threshold after reset: %d", n)
	}
	if live := db.LiveWALBytes(); live >= limit {
		t.Fatalf("live log not reset by the checkpoint: %d bytes", live)
	}

	// A genuinely new crossing fires exactly one more.
	cross()
	waitAutoCkpt(t, db, 2)

	// The checkpoints actually did their job: old segments are gone and
	// recovery reproduces the live state from checkpoint + short tail.
	segs, err := listWALSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 2 {
		t.Fatalf("checkpoints left %d segments behind", len(segs))
	}
	live := fingerprint(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(rec); got != live {
		t.Fatalf("recovered state diverges after auto-checkpoints\nlive:\n%s\ngot:\n%s", live, got)
	}
}

// TestAutoCheckpointLatchesWhileInFlight holds a checkpoint open via the
// test hook while commits keep crossing the threshold and asserts the
// in-flight latch admits no second trigger until the first completes.
func TestAutoCheckpointLatchesWhileInFlight(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	d := model.MustDesc(model.AttrDesc{Name: "n", Kind: model.KInt})
	if _, err := db.DefineAtomType("t", d); err != nil {
		t.Fatal(err)
	}

	// While the triggered checkpoint holds its pin, hammer the log far
	// past the threshold again: the latch must swallow every crossing
	// observed before the first checkpoint completes.
	entered := make(chan struct{}, 8)
	db.ckptTestHook = func() {
		entered <- struct{}{}
		for i := 0; i < 200; i++ {
			if _, err := db.InsertAtom("t", model.Int(int64(i))); err != nil {
				t.Errorf("in-hook insert: %v", err)
				return
			}
		}
	}
	if err := db.SetAutoCheckpoint(512); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.InsertAtom("t", model.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	<-entered
	waitAutoCkpt(t, db, 1)
	db.ckptTestHook = nil
	// The in-hook inserts re-crossed the threshold, so after the first
	// checkpoint completes (and only then) a second may fire. Between
	// the two, the count passes through exactly 1 — waitAutoCkpt above
	// observed that state; had a second trigger stacked while the first
	// was in flight, its hook send would have filled the channel twice
	// before the count ever reached 1.
	if n := len(entered); n != 0 {
		t.Fatalf("%d checkpoint(s) entered while the first was still in flight", n)
	}
}
