package storage

import (
	"fmt"
	"sync/atomic"
)

// counter is an atomically updated statistic.
type counter struct{ v atomic.Int64 }

func (c *counter) Add(n int64)   { c.v.Add(n) }
func (c *counter) Load() int64   { return c.v.Load() }
func (c *counter) Store(n int64) { c.v.Store(n) }

// Stats counts the logical work a database performs. The PRIMA prototype
// split its architecture into an atom-oriented layer below a molecule-
// processing layer (Chapter 5); these counters expose the atom-oriented
// layer's traffic so experiments can report logical work independent of
// wall-clock noise.
type Stats struct {
	AtomsFetched   counter // atoms materialized by Get/Scan
	LinksTraversed counter // partner-list steps taken
	AtomsInserted  counter
	AtomsDeleted   counter
	LinksConnected counter
	LinksDropped   counter
	IndexLookups   counter
	AutoAnalyzes   counter // histogram rebuilds triggered by drift
}

// WorkTally accumulates logical-work counts locally — one goroutine, no
// atomics — so hot loops (parallel derivation above all) avoid per-step
// atomic traffic on the shared Stats block. FlushTo folds the tally into
// Stats in two atomic operations and zeroes it; Add merges another tally
// (a worker's) into this one.
type WorkTally struct {
	AtomsFetched   int64
	LinksTraversed int64
}

// Add merges o into t.
func (t *WorkTally) Add(o WorkTally) {
	t.AtomsFetched += o.AtomsFetched
	t.LinksTraversed += o.LinksTraversed
}

// FlushTo adds the tally into the shared counters and resets it.
func (t *WorkTally) FlushTo(s *Stats) {
	if t.AtomsFetched != 0 {
		s.AtomsFetched.Add(t.AtomsFetched)
	}
	if t.LinksTraversed != 0 {
		s.LinksTraversed.Add(t.LinksTraversed)
	}
	*t = WorkTally{}
}

// StatsSnapshot is an immutable copy of the counters.
type StatsSnapshot struct {
	AtomsFetched   int64
	LinksTraversed int64
	AtomsInserted  int64
	AtomsDeleted   int64
	LinksConnected int64
	LinksDropped   int64
	IndexLookups   int64
	AutoAnalyzes   int64
}

// Snapshot copies the current counter values.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		AtomsFetched:   s.AtomsFetched.Load(),
		LinksTraversed: s.LinksTraversed.Load(),
		AtomsInserted:  s.AtomsInserted.Load(),
		AtomsDeleted:   s.AtomsDeleted.Load(),
		LinksConnected: s.LinksConnected.Load(),
		LinksDropped:   s.LinksDropped.Load(),
		IndexLookups:   s.IndexLookups.Load(),
		AutoAnalyzes:   s.AutoAnalyzes.Load(),
	}
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.AtomsFetched.Store(0)
	s.LinksTraversed.Store(0)
	s.AtomsInserted.Store(0)
	s.AtomsDeleted.Store(0)
	s.LinksConnected.Store(0)
	s.LinksDropped.Store(0)
	s.IndexLookups.Store(0)
	s.AutoAnalyzes.Store(0)
}

// Sub returns the per-field difference s - o, for before/after accounting.
func (s StatsSnapshot) Sub(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		AtomsFetched:   s.AtomsFetched - o.AtomsFetched,
		LinksTraversed: s.LinksTraversed - o.LinksTraversed,
		AtomsInserted:  s.AtomsInserted - o.AtomsInserted,
		AtomsDeleted:   s.AtomsDeleted - o.AtomsDeleted,
		LinksConnected: s.LinksConnected - o.LinksConnected,
		LinksDropped:   s.LinksDropped - o.LinksDropped,
		IndexLookups:   s.IndexLookups - o.IndexLookups,
		AutoAnalyzes:   s.AutoAnalyzes - o.AutoAnalyzes,
	}
}

// String renders the snapshot compactly.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf("fetched=%d traversed=%d inserted=%d deleted=%d connected=%d dropped=%d indexed=%d autoanalyzed=%d",
		s.AtomsFetched, s.LinksTraversed, s.AtomsInserted, s.AtomsDeleted,
		s.LinksConnected, s.LinksDropped, s.IndexLookups, s.AutoAnalyzes)
}
