package storage

// BenchmarkP14GroupCommit measures the group-commit win: 16 concurrent
// committers against a log whose fsync costs a modelled disk latency
// (~1ms, injected via a sleeping walFile so the numbers do not depend on
// how fast the CI filesystem's real fsync happens to be). The naive
// variant fsyncs once per commit; the group variant lets the single
// flusher acknowledge a whole batch per fsync. The commits/s ratio is the
// headline number the bench trajectory tracks.

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"mad/internal/model"
)

// benchFS models a disk with a fixed fsync latency.
type benchFS struct{ syncLatency time.Duration }

func (bf benchFS) open(path string) (walFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return benchFile{f: f, lat: bf.syncLatency}, nil
}

type benchFile struct {
	f   *os.File
	lat time.Duration
}

func (bf benchFile) Write(p []byte) (int, error) { return bf.f.Write(p) }
func (bf benchFile) Sync() error {
	time.Sleep(bf.lat)
	return bf.f.Sync()
}
func (bf benchFile) Close() error { return bf.f.Close() }

func benchCommits(b *testing.B, perCommitSync bool) {
	const writers = 16
	dir := b.TempDir()
	db, err := openWith(dir, benchFS{syncLatency: time.Millisecond}.open, perCommitSync)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	d := model.MustDesc(model.AttrDesc{Name: "n", Kind: model.KInt})
	if _, err := db.DefineAtomType("t", d); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	var next int64
	var mu sync.Mutex
	take := func() (int64, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(b.N) {
			return 0, false
		}
		next++
		return next, true
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n, ok := take()
				if !ok {
					return
				}
				if _, err := db.InsertAtom("t", model.Int(n)); err != nil {
					b.Error(fmt.Errorf("insert: %w", err))
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "commits/s")
	appends, syncs := db.WALCounters()
	if syncs > 0 {
		b.ReportMetric(float64(appends)/float64(syncs), "appends/fsync")
	}
}

func BenchmarkP14GroupCommit(b *testing.B) {
	b.Run("group", func(b *testing.B) { benchCommits(b, false) })
	b.Run("naive", func(b *testing.B) { benchCommits(b, true) })
}
