package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"mad/internal/catalog"
	"mad/internal/model"
)

// This file owns the binary snapshot format ("MADSNAP1"): the schema in
// declaration order (so type numbers survive the round trip) followed by
// every atom-type and link-type occurrence. internal/codec delegates its
// public Encode/Decode/Save/Load here — the format had to live in the
// storage package once checkpointing reused it, because Checkpoint and
// Recover are Database-level operations and codec sits above storage.
//
// Two read views exist: EncodeSnapshot serializes the latest published
// commit, EncodeSnapshotAt a pinned snapshot timestamp (the checkpoint
// path, which must not observe commits that raced past the pin). On the
// way in, DecodeSnapshot installs every occurrence at one synthetic
// commit timestamp instead of one commit per atom: recovery then replays
// WAL records stamped above the checkpoint timestamp on top, and version
// chains stay monotonic.

// snapMagic identifies snapshot files; the trailing digit is the format
// version.
const snapMagic = "MADSNAP1"

// maxSnapStr bounds decoded strings to keep corrupt files from
// allocating unbounded memory.
const maxSnapStr = 1 << 24

type snapWriter struct {
	w   *bufio.Writer
	err error
}

func newSnapWriter(out io.Writer) *snapWriter {
	return &snapWriter{w: bufio.NewWriter(out)}
}

func (w *snapWriter) u8(v uint8) {
	if w.err == nil {
		w.err = w.w.WriteByte(v)
	}
}

func (w *snapWriter) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

func (w *snapWriter) u64(v uint64) {
	if w.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, w.err = w.w.Write(buf[:])
}

func (w *snapWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
}

func (w *snapWriter) boolean(b bool) {
	if b {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *snapWriter) flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

type snapReader struct {
	r   *bufio.Reader
	err error
}

func newSnapReader(in io.Reader) *snapReader {
	return &snapReader{r: bufio.NewReader(in)}
}

func (r *snapReader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	r.err = err
	return b
}

func (r *snapReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	r.err = err
	return v
}

func (r *snapReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	var buf [8]byte
	_, err := io.ReadFull(r.r, buf[:])
	r.err = err
	return binary.LittleEndian.Uint64(buf[:])
}

func (r *snapReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxSnapStr {
		r.err = fmt.Errorf("storage: string length %d exceeds limit", n)
		return ""
	}
	buf := make([]byte, n)
	_, err := io.ReadFull(r.r, buf)
	r.err = err
	return string(buf)
}

func (r *snapReader) boolean() bool { return r.u8() != 0 }

// encodeValue writes one attribute value.
func encodeValue(w *snapWriter, v model.Value) {
	w.u8(uint8(v.Kind()))
	switch v.Kind() {
	case model.KNull:
	case model.KBool:
		b, _ := v.AsBool()
		w.boolean(b)
	case model.KInt:
		i, _ := v.AsInt()
		w.u64(uint64(i))
	case model.KFloat:
		f, _ := v.AsFloat()
		w.u64(math.Float64bits(f))
	case model.KString:
		s, _ := v.AsString()
		w.str(s)
	case model.KID:
		id, _ := v.AsID()
		w.u64(uint64(id))
	}
}

// decodeValue reads one attribute value.
func decodeValue(r *snapReader) (model.Value, error) {
	kind := model.Kind(r.u8())
	switch kind {
	case model.KNull:
		return model.Null(), r.err
	case model.KBool:
		return model.Bool(r.boolean()), r.err
	case model.KInt:
		return model.Int(int64(r.u64())), r.err
	case model.KFloat:
		return model.Float(math.Float64frombits(r.u64())), r.err
	case model.KString:
		return model.Str(r.str()), r.err
	case model.KID:
		return model.ID(model.AtomID(r.u64())), r.err
	}
	return model.Null(), fmt.Errorf("storage: unknown value kind %d", kind)
}

// EncodeSnapshot writes a MADSNAP1 snapshot of the database as of the
// latest published commit.
func EncodeSnapshot(db *Database, out io.Writer) error {
	w := newSnapWriter(out)
	encodeSnapshotTo(w, db, db.latestTS.Load())
	return w.flush()
}

// EncodeSnapshotAt writes a snapshot as of the given commit timestamp.
// Callers that encode concurrently with writers must hold a Snapshot pin
// at ts so vacuum cannot reclaim the versions mid-encode.
func EncodeSnapshotAt(db *Database, ts uint64, out io.Writer) error {
	w := newSnapWriter(out)
	encodeSnapshotTo(w, db, ts)
	return w.flush()
}

// encodeSnapshotTo writes magic plus body into an existing writer — the
// checkpoint container embeds the snapshot between its own sections.
func encodeSnapshotTo(w *snapWriter, db *Database, ts uint64) {
	schema := db.Schema()
	encodeSnapshotSections(w, db, ts, schema.AtomTypes(), schema.LinkTypes())
}

// encodeSnapshotSections writes the snapshot against explicitly captured
// type lists. Checkpoint captures them under the commit mutex at pin
// time: a type defined after the pin must stay out of the snapshot so
// replaying its (higher-stamped) DDL record does not collide.
func encodeSnapshotSections(w *snapWriter, db *Database, ts uint64, atomTypes []*catalog.AtomType, linkTypes []*catalog.LinkType) {
	if w.err == nil {
		_, w.err = w.w.WriteString(snapMagic)
	}
	w.uvarint(uint64(len(atomTypes)))
	for _, at := range atomTypes {
		w.str(at.Name)
		w.uvarint(uint64(at.Desc.Len()))
		for _, ad := range at.Desc.Attrs() {
			w.str(ad.Name)
			w.u8(uint8(ad.Kind))
			w.boolean(ad.NotNull)
		}
	}
	w.uvarint(uint64(len(linkTypes)))
	for _, lt := range linkTypes {
		w.str(lt.Name)
		w.str(lt.Desc.SideA)
		w.str(lt.Desc.SideB)
		w.uvarint(uint64(lt.Desc.CardA.Min))
		w.uvarint(uint64(lt.Desc.CardA.Max))
		w.uvarint(uint64(lt.Desc.CardB.Min))
		w.uvarint(uint64(lt.Desc.CardB.Max))
	}
	for _, at := range atomTypes {
		c, ok := db.Container(at.Name)
		if !ok {
			if w.err == nil {
				w.err = fmt.Errorf("storage: no container for %q", at.Name)
			}
			return
		}
		atoms := c.AtomsAt(ts)
		w.uvarint(uint64(len(atoms)))
		for _, a := range atoms {
			w.u64(uint64(a.ID))
			for _, v := range a.Vals {
				encodeValue(w, v)
			}
			if w.err != nil {
				return
			}
		}
	}
	for _, lt := range linkTypes {
		ls, ok := db.LinkStore(lt.Name)
		if !ok {
			if w.err == nil {
				w.err = fmt.Errorf("storage: no store for %q", lt.Name)
			}
			return
		}
		links := ls.LinksAt(ts)
		w.uvarint(uint64(len(links)))
		for _, l := range links {
			w.u64(uint64(l.A))
			w.u64(uint64(l.B))
			if w.err != nil {
				return
			}
		}
	}
}

// DecodeSnapshot reconstructs a database from a MADSNAP1 snapshot. Every
// occurrence is installed at one synthetic commit; the returned
// database's clock publishes it.
func DecodeSnapshot(in io.Reader) (*Database, error) {
	r := newSnapReader(in)
	db := NewDatabase()
	const loadTS = 2
	if err := decodeSnapshotInto(r, db, loadTS); err != nil {
		return nil, err
	}
	db.latestTS.Store(loadTS)
	db.lastAlloc = loadTS
	return db, nil
}

// decodeSnapshotInto reads magic plus body, installing every occurrence
// into db at commit timestamp applyTS. db must be empty; the caller owns
// clock bookkeeping.
func decodeSnapshotInto(r *snapReader, db *Database, applyTS uint64) error {
	head := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(r.r, head); err != nil {
		return fmt.Errorf("storage: reading snapshot header: %w", err)
	}
	if string(head) != snapMagic {
		return fmt.Errorf("storage: bad magic %q (not a MAD snapshot?)", head)
	}

	numAtomTypes := r.uvarint()
	type atomTypeInfo struct {
		name string
		desc *model.Desc
	}
	atomTypes := make([]atomTypeInfo, 0, numAtomTypes)
	for i := uint64(0); i < numAtomTypes && r.err == nil; i++ {
		name := r.str()
		numAttrs := r.uvarint()
		attrs := make([]model.AttrDesc, 0, numAttrs)
		for j := uint64(0); j < numAttrs && r.err == nil; j++ {
			attrs = append(attrs, model.AttrDesc{
				Name:    r.str(),
				Kind:    model.Kind(r.u8()),
				NotNull: r.boolean(),
			})
		}
		if r.err != nil {
			return r.err
		}
		desc, err := model.NewDesc(attrs...)
		if err != nil {
			return err
		}
		if _, err := db.defineAtomType(name, desc); err != nil {
			return err
		}
		atomTypes = append(atomTypes, atomTypeInfo{name: name, desc: desc})
	}

	numLinkTypes := r.uvarint()
	linkNames := make([]string, 0, numLinkTypes)
	for i := uint64(0); i < numLinkTypes && r.err == nil; i++ {
		name := r.str()
		desc := model.LinkDesc{SideA: r.str(), SideB: r.str()}
		desc.CardA = model.Cardinality{Min: int(r.uvarint()), Max: int(r.uvarint())}
		desc.CardB = model.Cardinality{Min: int(r.uvarint()), Max: int(r.uvarint())}
		if r.err != nil {
			return r.err
		}
		if _, err := db.defineLinkType(name, desc); err != nil {
			return err
		}
		linkNames = append(linkNames, name)
	}

	for _, at := range atomTypes {
		c, _ := db.Container(at.name)
		n := r.uvarint()
		for i := uint64(0); i < n && r.err == nil; i++ {
			id := model.AtomID(r.u64())
			vals := make([]model.Value, at.desc.Len())
			for j := range vals {
				v, err := decodeValue(r)
				if err != nil {
					return err
				}
				vals[j] = v
			}
			stored, err := c.validate(id, vals)
			if err != nil {
				return err
			}
			c.syncSeq(id)
			if _, err := c.applyAdopt(stored, applyTS); err != nil {
				return err
			}
		}
	}
	for _, name := range linkNames {
		ls, _ := db.LinkStore(name)
		ca, okA := db.Container(ls.desc.SideA)
		cb, okB := db.Container(ls.desc.SideB)
		n := r.uvarint()
		for i := uint64(0); i < n && r.err == nil; i++ {
			a := model.AtomID(r.u64())
			b := model.AtomID(r.u64())
			if r.err != nil {
				break
			}
			if !okA || !ca.HasAt(a, applyTS) {
				return fmt.Errorf("storage: link %q: atom %v not in %q", name, a, ls.desc.SideA)
			}
			if !okB || !cb.HasAt(b, applyTS) {
				return fmt.Errorf("storage: link %q: atom %v not in %q", name, b, ls.desc.SideB)
			}
			if _, err := ls.applyConnect(a, b, applyTS); err != nil {
				return err
			}
		}
	}
	return r.err
}
