package storage

import (
	"fmt"

	"mad/internal/model"
)

// Txn groups mutations so they install atomically — the transactional
// side of the "powerful manipulation facilities" the paper demands for
// complex-object processing. Since the MVCC refactor a Txn buffers its
// writes privately: nothing is visible to any reader (including the
// owning goroutine's own queries) until Commit installs every buffered
// operation under the database's commit mutex and publishes one commit
// timestamp for all of them. An owner that errors mid-batch can simply
// abandon or Rollback the Txn — zero versions were ever visible — and a
// Commit that fails re-validation pops every version it pushed before
// publishing, so failure is all-or-nothing too.
//
// Reads used for buffer-time validation resolve against the snapshot
// pinned at Begin plus this transaction's own buffered writes (its
// overlay) — the transaction's *effective view*, exposed through
// ScanEff, EffAtom, EffIDs and EffPartners so the owning session can
// also query its own uncommitted writes (read-your-writes). Readers
// elsewhere never see the overlay: to every other session the
// transaction is invisible until Commit.
//
// A Txn is not safe for concurrent use; the database it belongs to
// remains fully concurrent.
type Txn struct {
	db   *Database
	snap *Snapshot
	done bool // finished by Commit or Rollback (or a failed Commit)

	// ops apply the buffered mutations at the commit timestamp; each
	// returns an undo that pops exactly what it pushed.
	ops []func(ts uint64) (undo func(), err error)
	// wops is the logical write set the WAL records at Commit, parallel to
	// ops: puts carry the stored atom, deletes just the identifier (the
	// link cascade is recomputed at replay through the same apply path).
	wops []walOp
	// post runs after a successful publish: statistics and histogram
	// maintenance (advisory state, outside the versioned store).
	post []func()

	// Overlay: this transaction's private view of its own writes, merged
	// over the begin snapshot for buffer-time validation.
	atoms   map[string]map[model.AtomID]ovAtom
	linkOps map[string][]linkDelta
	// touched types / stores for the one-shot epoch maintenance at commit.
	touchedTypes map[string]bool
	touchedLinks map[string]*LinkStore
}

// ovAtom is the overlay state of one atom: its buffered value, or a
// tombstone when deleted is set.
type ovAtom struct {
	atom    model.Atom
	deleted bool
}

// linkDelta is one buffered link mutation in op order. drop marks a
// cascade ("every link incident to a removed"); otherwise the pair <a, b>
// was added or removed.
type linkDelta struct {
	a, b  model.AtomID
	added bool
	drop  bool
}

// Begin starts a buffered-write transaction pinned to the latest
// published commit. The pin holds the vacuum horizon until the
// transaction finishes.
func (db *Database) Begin() *Txn {
	return &Txn{
		db:           db,
		snap:         db.Snapshot(),
		atoms:        make(map[string]map[model.AtomID]ovAtom),
		linkOps:      make(map[string][]linkDelta),
		touchedTypes: make(map[string]bool),
		touchedLinks: make(map[string]*LinkStore),
	}
}

// SnapshotTS returns the commit timestamp of the transaction's begin
// snapshot — the version its validation reads resolve against.
func (t *Txn) SnapshotTS() uint64 { return t.snap.TS() }

// Snapshot exposes the transaction's begin snapshot so queries issued
// inside the transaction can read the same consistent view it validates
// against. Buffered writes are NOT visible through the snapshot itself —
// readers that want the transaction's own writes merged in use the
// effective view (EffAtom/EffIDs/EffPartners/ScanEff) instead. The
// snapshot stays owned by the transaction: it closes at Commit/Rollback,
// so callers must not Close it and must not use it past the transaction.
func (t *Txn) Snapshot() *Snapshot { return t.snap }

// ScanEff scans the transaction's effective view of an atom type: the
// begin snapshot with this transaction's buffered writes merged over it
// (updates replace the snapshot value, tombstones hide it, inserts are
// appended after the snapshot's atoms). This is the view the MQL layer
// matches DML predicates against inside a transaction — a statement can
// UPDATE or CONNECT an atom the same transaction just inserted — and,
// together with EffAtom/EffIDs/EffPartners, the view in-transaction
// SELECT queries derive from once the transaction holds buffered
// writes.
func (t *Txn) ScanEff(typeName string, fn func(model.Atom) bool) error {
	if err := t.active(); err != nil {
		return err
	}
	ov := t.atoms[typeName]
	stopped := false
	err := t.snap.ScanAtoms(typeName, func(a model.Atom) bool {
		if o, ok := ov[a.ID]; ok {
			if o.deleted {
				return true
			}
			if !fn(o.atom) {
				stopped = true
				return false
			}
			return true
		}
		if !fn(a) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	for id, o := range ov {
		if o.deleted {
			continue
		}
		if _, inSnap := t.snap.GetAtom(typeName, id); inSnap {
			continue // already delivered as a replacement above
		}
		if !fn(o.atom) {
			return nil
		}
	}
	return nil
}

// active guards against use after Commit/Rollback.
func (t *Txn) active() error {
	if t.done {
		return fmt.Errorf("storage: transaction already finished")
	}
	return nil
}

// lookupEff resolves an atom through the overlay, falling back to the
// begin snapshot.
func (t *Txn) lookupEff(typeName string, id model.AtomID) (model.Atom, bool) {
	if m := t.atoms[typeName]; m != nil {
		if ov, ok := m[id]; ok {
			return ov.atom, !ov.deleted
		}
	}
	// Atoms dropped by a buffered cascade-less delete of another type
	// cannot alias here (identifiers are type-scoped), so the snapshot is
	// authoritative for everything the overlay doesn't mention.
	return t.snap.GetAtom(typeName, id)
}

// setOverlay records the overlay state of one atom.
func (t *Txn) setOverlay(typeName string, id model.AtomID, ov ovAtom) {
	m := t.atoms[typeName]
	if m == nil {
		m = make(map[model.AtomID]ovAtom)
		t.atoms[typeName] = m
	}
	m[id] = ov
}

// effHas reports whether the link <a, b> exists in the transaction's
// effective view: the begin snapshot with the buffered deltas replayed in
// op order.
func (t *Txn) effHas(linkName string, ls *LinkStore, a, b model.AtomID) bool {
	present := ls.HasAt(a, b, t.snap.TS())
	refl := ls.desc.Reflexive()
	for _, d := range t.linkOps[linkName] {
		switch {
		case d.drop && (d.a == a || d.a == b):
			present = false
		case !d.drop && (d.a == a && d.b == b || refl && d.a == b && d.b == a):
			present = d.added
		}
	}
	return present
}

// InsertAtom buffers the insertion of a new atom, validating its values
// and reserving its identifier immediately (an aborted transaction burns
// the reservation, which is harmless).
func (t *Txn) InsertAtom(typeName string, vals ...model.Value) (model.AtomID, error) {
	if err := t.active(); err != nil {
		return 0, err
	}
	db := t.db
	db.mu.RLock()
	c, ok := db.containerByName(typeName)
	db.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	id, err := c.allocID()
	if err != nil {
		return 0, err
	}
	a, err := c.validate(id, vals)
	if err != nil {
		return 0, err
	}
	t.setOverlay(typeName, id, ovAtom{atom: a})
	t.touchedTypes[typeName] = true
	t.wops = append(t.wops, walOp{kind: walOpPut, name: typeName, atom: a})
	t.ops = append(t.ops, func(ts uint64) (func(), error) {
		undos := []func(){c.applyPut(a, ts)}
		db.mu.RLock()
		ixs := db.indexesOf(typeName)
		db.mu.RUnlock()
		for _, ix := range ixs {
			undos = append(undos, ix.applyAdd(a, ts))
		}
		return joinUndos(undos), nil
	})
	t.post = append(t.post, func() {
		db.stats.AtomsInserted.Add(1)
		db.histInsert(typeName, a)
	})
	return id, nil
}

// UpdateAtom buffers the replacement of an atom's values. The atom must
// exist in the transaction's effective view; Commit re-validates that it
// still exists in the committed state.
func (t *Txn) UpdateAtom(typeName string, id model.AtomID, vals []model.Value) error {
	if err := t.active(); err != nil {
		return err
	}
	db := t.db
	db.mu.RLock()
	c, ok := db.containerByName(typeName)
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	old, ok := t.lookupEff(typeName, id)
	if !ok {
		return fmt.Errorf("storage: atom %v not in %q", id, typeName)
	}
	updated, err := c.validate(id, vals)
	if err != nil {
		return err
	}
	t.setOverlay(typeName, id, ovAtom{atom: updated})
	t.touchedTypes[typeName] = true
	t.wops = append(t.wops, walOp{kind: walOpPut, name: typeName, atom: updated})
	t.ops = append(t.ops, func(ts uint64) (func(), error) {
		prev, ok := c.GetAt(id, ts)
		if !ok {
			return nil, fmt.Errorf("storage: atom %v not in %q", id, typeName)
		}
		undos := []func(){c.applyPut(updated, ts)}
		db.mu.RLock()
		ixs := db.indexesOf(typeName)
		db.mu.RUnlock()
		for _, ix := range ixs {
			undos = append(undos, ix.applyRemove(prev, ts))
			undos = append(undos, ix.applyAdd(updated, ts))
		}
		return joinUndos(undos), nil
	})
	prevVals := old.Clone()
	t.post = append(t.post, func() {
		db.histDelete(typeName, prevVals)
		db.histInsert(typeName, updated)
	})
	return nil
}

// DeleteAtom buffers the removal of an atom together with the cascade
// that drops every link incident to it — the cascade itself is computed
// at commit time against the committed state, so links connected by
// concurrent commits are dropped too (no dangling references, ever).
func (t *Txn) DeleteAtom(typeName string, id model.AtomID) error {
	if err := t.active(); err != nil {
		return err
	}
	db := t.db
	db.mu.RLock()
	c, ok := db.containerByName(typeName)
	var stores []*LinkStore
	var storeNames []string
	if ok {
		for _, lt := range db.schema.LinkTypesOf(typeName) {
			if ls, present := db.links[lt.Name]; present {
				stores = append(stores, ls)
				storeNames = append(storeNames, lt.Name)
			}
		}
	}
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	old, ok := t.lookupEff(typeName, id)
	if !ok {
		return fmt.Errorf("storage: atom %v not in %q", id, typeName)
	}
	t.setOverlay(typeName, id, ovAtom{deleted: true})
	for i, name := range storeNames {
		t.linkOps[name] = append(t.linkOps[name], linkDelta{a: id, drop: true})
		t.touchedLinks[name] = stores[i]
	}
	t.touchedTypes[typeName] = true
	t.wops = append(t.wops, walOp{kind: walOpDelete, name: typeName, id: id})
	t.ops = append(t.ops, func(ts uint64) (func(), error) {
		// Capture the value being deleted before pushing the tombstone:
		// an earlier operation of this very transaction may have updated
		// the atom at the candidate timestamp, and the index postings to
		// remove are the ones that value carries.
		prev, prevOK := c.GetAt(id, ts)
		var undos []func()
		dropped := 0
		for _, ls := range stores {
			if n, u := ls.applyDropAtom(id, ts); n > 0 {
				dropped += n
				undos = append(undos, u)
			}
		}
		undoDel, err := c.applyDelete(id, ts)
		if err != nil {
			for i := len(undos) - 1; i >= 0; i-- {
				undos[i]()
			}
			return nil, err
		}
		undos = append(undos, undoDel)
		db.mu.RLock()
		ixs := db.indexesOf(typeName)
		db.mu.RUnlock()
		if prevOK {
			for _, ix := range ixs {
				undos = append(undos, ix.applyRemove(prev, ts))
			}
		}
		t.post = append(t.post, func() {
			db.stats.LinksDropped.Add(int64(dropped))
		})
		return joinUndos(undos), nil
	})
	prevVals := old.Clone()
	t.post = append(t.post, func() {
		db.stats.AtomsDeleted.Add(1)
		db.histDelete(typeName, prevVals)
	})
	return nil
}

// Connect buffers the insertion of a link. Endpoint existence is checked
// against the transaction's effective view here and against the committed
// state at Commit; cardinality restrictions are enforced at Commit.
// Connecting a link that already exists in the effective view is a no-op,
// matching the idempotent auto-commit Connect.
func (t *Txn) Connect(linkName string, a, b model.AtomID) error {
	if err := t.active(); err != nil {
		return err
	}
	db := t.db
	db.mu.RLock()
	ls, ok := db.links[linkName]
	var ca, cb *Container
	var okA, okB bool
	if ok {
		ca, okA = db.containerByName(ls.desc.SideA)
		cb, okB = db.containerByName(ls.desc.SideB)
	}
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("storage: unknown link type %q", linkName)
	}
	if !okA || !t.hasEff(ls.desc.SideA, a) {
		return fmt.Errorf("storage: link %q: atom %v not in %q", linkName, a, ls.desc.SideA)
	}
	if !okB || !t.hasEff(ls.desc.SideB, b) {
		return fmt.Errorf("storage: link %q: atom %v not in %q", linkName, b, ls.desc.SideB)
	}
	if t.effHas(linkName, ls, a, b) {
		return nil // idempotent connect: already present, nothing to buffer
	}
	t.linkOps[linkName] = append(t.linkOps[linkName], linkDelta{a: a, b: b, added: true})
	t.touchedLinks[linkName] = ls
	t.wops = append(t.wops, walOp{kind: walOpConnect, name: linkName, a: a, b: b})
	t.ops = append(t.ops, func(ts uint64) (func(), error) {
		if !ca.HasAt(a, ts) {
			return nil, fmt.Errorf("storage: link %q: atom %v not in %q", linkName, a, ls.desc.SideA)
		}
		if !cb.HasAt(b, ts) {
			return nil, fmt.Errorf("storage: link %q: atom %v not in %q", linkName, b, ls.desc.SideB)
		}
		undo, err := ls.applyConnect(a, b, ts)
		if err != nil {
			return nil, err
		}
		return undo, nil // nil undo when a concurrent commit already connected it
	})
	t.post = append(t.post, func() {
		db.stats.LinksConnected.Add(1)
	})
	return nil
}

// hasEff reports whether an atom exists in the effective view.
func (t *Txn) hasEff(typeName string, id model.AtomID) bool {
	_, ok := t.lookupEff(typeName, id)
	return ok
}

// Disconnect buffers the removal of a link; removed reports whether the
// link exists in the transaction's effective view.
func (t *Txn) Disconnect(linkName string, a, b model.AtomID) (bool, error) {
	if err := t.active(); err != nil {
		return false, err
	}
	db := t.db
	db.mu.RLock()
	ls, ok := db.links[linkName]
	db.mu.RUnlock()
	if !ok {
		return false, fmt.Errorf("storage: unknown link type %q", linkName)
	}
	if !t.effHas(linkName, ls, a, b) {
		return false, nil
	}
	t.linkOps[linkName] = append(t.linkOps[linkName], linkDelta{a: a, b: b})
	t.touchedLinks[linkName] = ls
	t.wops = append(t.wops, walOp{kind: walOpDisconnect, name: linkName, a: a, b: b})
	t.ops = append(t.ops, func(ts uint64) (func(), error) {
		_, undo := ls.applyDisconnect(a, b, ts)
		return undo, nil // nil undo when a concurrent commit already removed it
	})
	t.post = append(t.post, func() {
		db.stats.LinksDropped.Add(1)
	})
	return true, nil
}

// joinUndos folds a list of undos into one that runs them in reverse.
func joinUndos(undos []func()) func() {
	if len(undos) == 1 {
		return undos[0]
	}
	return func() {
		for i := len(undos) - 1; i >= 0; i-- {
			undos[i]()
		}
	}
}

// Commit installs every buffered operation at one fresh commit timestamp
// and publishes it atomically: concurrent snapshot readers observe either
// none of this transaction's writes or all of them. When an operation
// fails re-validation against the committed state (an endpoint deleted by
// a concurrent commit, say), every version already pushed is popped
// before publication — zero versions become visible — and the error is
// returned. The transaction is finished afterwards either way; Rollback
// after Commit is a hard error.
func (t *Txn) Commit() error {
	if err := t.active(); err != nil {
		return err
	}
	t.done = true
	defer t.snap.Close()
	if len(t.ops) == 0 {
		return nil // nothing buffered, nothing to publish
	}
	db := t.db
	db.commitMu.Lock()
	if err := db.walGate(); err != nil {
		db.commitMu.Unlock()
		return err
	}
	ts := db.lastAlloc + 1
	var undos []func()
	for i, op := range t.ops {
		undo, err := op(ts)
		if err != nil {
			for j := len(undos) - 1; j >= 0; j-- {
				undos[j]()
			}
			db.commitMu.Unlock()
			return fmt.Errorf("storage: commit failed at operation %d: %w", i, err)
		}
		if undo != nil {
			undos = append(undos, undo)
		}
	}
	// sealCommit releases commitMu; with a WAL attached it returns only
	// after this transaction's record is fsynced and published, so a nil
	// return IS the durability acknowledgement.
	if err := db.sealCommit(ts, t.wops); err != nil {
		return err
	}
	for _, fn := range t.post {
		fn()
	}
	for _, ls := range t.touchedLinks {
		db.maybeLinkEpochBump(ls)
	}
	for typeName := range t.touchedTypes {
		db.maybeAutoAnalyze(typeName)
	}
	t.ops, t.wops, t.post = nil, nil, nil
	return nil
}

// Rollback discards the buffered operations. Nothing was ever visible, so
// there is nothing to undo. It is a hard error after Commit (successful
// or not) or a previous Rollback.
func (t *Txn) Rollback() error {
	if err := t.active(); err != nil {
		return err
	}
	t.done = true
	t.snap.Close()
	t.ops, t.wops, t.post = nil, nil, nil
	return nil
}

// Mutations reports how many mutations the transaction has buffered.
func (t *Txn) Mutations() int { return len(t.ops) }

// Dirty reports whether the transaction holds buffered writes — the
// signal the query layer uses to decide between the plain begin-snapshot
// read path and the effective-view (read-your-writes) path.
func (t *Txn) Dirty() bool { return len(t.ops) > 0 }

// EffAtom resolves one atom through the transaction's effective view:
// the overlay value when buffered (false for a tombstone), the begin
// snapshot otherwise. It returns false on a finished transaction.
func (t *Txn) EffAtom(typeName string, id model.AtomID) (model.Atom, bool) {
	if t.done {
		return model.Atom{}, false
	}
	return t.lookupEff(typeName, id)
}

// EffIDs returns the identifiers of a type's effective occurrence:
// snapshot atoms minus buffered tombstones, followed by this
// transaction's own inserts in identifier order. The enumeration is
// deterministic, matching ScanEff's delivery order.
func (t *Txn) EffIDs(typeName string) []model.AtomID {
	if t.done {
		return nil
	}
	ov := t.atoms[typeName]
	var out []model.AtomID
	_ = t.snap.ScanAtoms(typeName, func(a model.Atom) bool {
		if o, ok := ov[a.ID]; ok && o.deleted {
			return true
		}
		out = append(out, a.ID)
		return true
	})
	var extra []model.AtomID
	for id, o := range ov {
		if o.deleted {
			continue
		}
		if _, inSnap := t.snap.GetAtom(typeName, id); inSnap {
			continue // an update, already enumerated above
		}
		extra = append(extra, id)
	}
	model.SortAtomIDs(extra)
	return append(out, extra...)
}

// EffPartners returns the partners of an atom along the named link type
// in the transaction's effective view — the begin snapshot's adjacency
// with the buffered link deltas replayed in op order. fromSideA selects
// the traversal direction (side-B partners of a side-A atom, or the
// symmetric view), mirroring PartnersFromAAt/PartnersFromBAt.
func (t *Txn) EffPartners(linkName string, id model.AtomID, fromSideA bool) []model.AtomID {
	if t.done {
		return nil
	}
	db := t.db
	db.mu.RLock()
	ls, ok := db.links[linkName]
	db.mu.RUnlock()
	if !ok {
		return nil
	}
	var base []model.AtomID
	if fromSideA {
		base = ls.PartnersFromAAt(id, t.snap.TS())
	} else {
		base = ls.PartnersFromBAt(id, t.snap.TS())
	}
	deltas := t.linkOps[linkName]
	if len(deltas) == 0 {
		return base
	}
	// The base slice is an immutable version list; replay on a copy.
	out := append([]model.AtomID(nil), base...)
	remove := func(p model.AtomID) {
		for i, q := range out {
			if q == p {
				out = append(out[:i], out[i+1:]...)
				return
			}
		}
	}
	add := func(p model.AtomID) {
		for _, q := range out {
			if q == p {
				return
			}
		}
		out = append(out, p)
	}
	refl := ls.desc.Reflexive()
	for _, d := range deltas {
		switch {
		case d.drop:
			// Cascade of a buffered delete: every link incident to d.a goes.
			if d.a == id {
				out = out[:0]
			} else {
				remove(d.a)
			}
		case d.added:
			// Connect buffers the pair as given; applyConnect stores that
			// same orientation, so no reflexive mirroring here.
			if fromSideA && d.a == id {
				add(d.b)
			}
			if !fromSideA && d.b == id {
				add(d.a)
			}
		default:
			// Disconnect: for a reflexive link the stored pair may carry
			// either orientation, so drop whichever endpoint matches.
			if fromSideA {
				if d.a == id {
					remove(d.b)
				}
				if refl && d.b == id {
					remove(d.a)
				}
			} else {
				if d.b == id {
					remove(d.a)
				}
				if refl && d.a == id {
					remove(d.b)
				}
			}
		}
	}
	return out
}
