package storage

import (
	"fmt"

	"mad/internal/model"
)

// Txn groups mutations so they can be rolled back as a unit — the
// transactional side of the "powerful manipulation facilities" the paper
// demands for complex-object processing. The implementation is an undo
// log: every mutation records its inverse, and Rollback applies the
// inverses in reverse order. A Txn is not safe for concurrent use; the
// underlying database methods remain individually thread-safe.
type Txn struct {
	db   *Database
	undo []func() error
	done bool
}

// Begin starts a transaction.
func (db *Database) Begin() *Txn { return &Txn{db: db} }

// record queues an inverse operation.
func (t *Txn) record(inverse func() error) { t.undo = append(t.undo, inverse) }

// active guards against use after Commit/Rollback.
func (t *Txn) active() error {
	if t.done {
		return fmt.Errorf("storage: transaction already finished")
	}
	return nil
}

// InsertAtom inserts an atom; rollback deletes it again.
func (t *Txn) InsertAtom(typeName string, vals ...model.Value) (model.AtomID, error) {
	if err := t.active(); err != nil {
		return 0, err
	}
	id, err := t.db.InsertAtom(typeName, vals...)
	if err != nil {
		return 0, err
	}
	t.record(func() error {
		_, err := t.db.DeleteAtom(typeName, id)
		return err
	})
	return id, nil
}

// droppedLink remembers one link removed by a cascading delete.
type droppedLink struct {
	linkName string
	a, b     model.AtomID
}

// DeleteAtom deletes an atom with cascade; rollback re-adopts the atom and
// reconnects every dropped link.
func (t *Txn) DeleteAtom(typeName string, id model.AtomID) error {
	if err := t.active(); err != nil {
		return err
	}
	db := t.db
	db.mu.Lock()
	c, ok := db.containerByName(typeName)
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	atom, ok := c.Get(id)
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("storage: atom %v not in %q", id, typeName)
	}
	// Capture the links the cascade will drop.
	var dropped []droppedLink
	for _, lt := range db.schema.LinkTypesOf(typeName) {
		ls, ok := db.links[lt.Name]
		if !ok {
			continue
		}
		for _, b := range ls.PartnersFromA(id) {
			dropped = append(dropped, droppedLink{lt.Name, id, b})
		}
		for _, a := range ls.PartnersFromB(id) {
			if lt.Desc.Reflexive() && ls.hasExact(id, a) {
				continue // already captured from side A
			}
			dropped = append(dropped, droppedLink{lt.Name, a, id})
		}
	}
	db.mu.Unlock()

	if _, err := db.DeleteAtom(typeName, id); err != nil {
		return err
	}
	t.record(func() error {
		if err := db.AdoptAtom(typeName, atom); err != nil {
			return err
		}
		for _, dl := range dropped {
			if err := db.Connect(dl.linkName, dl.a, dl.b); err != nil {
				return err
			}
		}
		return nil
	})
	return nil
}

// UpdateAtom updates an atom; rollback restores the previous values.
func (t *Txn) UpdateAtom(typeName string, id model.AtomID, vals []model.Value) error {
	if err := t.active(); err != nil {
		return err
	}
	old, ok := t.db.GetAtom(typeName, id)
	if !ok {
		return fmt.Errorf("storage: atom %v not in %q", id, typeName)
	}
	if err := t.db.UpdateAtom(typeName, id, vals); err != nil {
		return err
	}
	prev := old.Clone()
	t.record(func() error {
		return t.db.UpdateAtom(typeName, id, prev.Vals)
	})
	return nil
}

// Connect inserts a link; rollback removes it — unless the link already
// existed (idempotent connect), in which case rollback leaves it alone.
func (t *Txn) Connect(linkName string, a, b model.AtomID) error {
	if err := t.active(); err != nil {
		return err
	}
	ls, ok := t.db.LinkStore(linkName)
	if !ok {
		return fmt.Errorf("storage: unknown link type %q", linkName)
	}
	existed := ls.Has(a, b)
	if err := t.db.Connect(linkName, a, b); err != nil {
		return err
	}
	if !existed {
		t.record(func() error {
			_, err := t.db.Disconnect(linkName, a, b)
			return err
		})
	}
	return nil
}

// Disconnect removes a link; rollback reinserts it when it was present.
func (t *Txn) Disconnect(linkName string, a, b model.AtomID) (bool, error) {
	if err := t.active(); err != nil {
		return false, err
	}
	removed, err := t.db.Disconnect(linkName, a, b)
	if err != nil {
		return false, err
	}
	if removed {
		t.record(func() error {
			return t.db.Connect(linkName, a, b)
		})
	}
	return removed, nil
}

// Commit finalizes the transaction; the mutations stay.
func (t *Txn) Commit() {
	t.done = true
	t.undo = nil
}

// Rollback undoes every mutation in reverse order. It returns the first
// inverse-application error (which indicates external interference with
// the touched atoms, e.g. a concurrent delete).
func (t *Txn) Rollback() error {
	if t.done {
		return fmt.Errorf("storage: transaction already finished")
	}
	t.done = true
	for i := len(t.undo) - 1; i >= 0; i-- {
		if err := t.undo[i](); err != nil {
			return fmt.Errorf("storage: rollback step %d failed: %w", i, err)
		}
	}
	t.undo = nil
	return nil
}

// Mutations reports how many mutations the transaction has recorded.
func (t *Txn) Mutations() int { return len(t.undo) }
