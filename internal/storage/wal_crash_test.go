package storage

// Crash-injection harness for the write-ahead log. The tests here drive a
// durable database through a deterministic workload while a fault-injecting
// walFile fails, short-writes or "crashes" the log at every possible write
// and fsync, then recover the directory and check the one property the WAL
// exists for: the recovered state equals the in-memory twin replayed to
// some prefix K of the workload with acked ≤ K ≤ submitted. An acked
// commit may never vanish; an unacked commit may survive only if its
// record made it to the log whole.

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"mad/internal/model"
)

var errInjected = fmt.Errorf("walfault: injected failure")

const (
	// faultFail returns an error from the Nth operation without any side
	// effect: a failed write leaves the log as it was.
	faultFail = iota
	// faultShort writes half the buffer before erroring — the torn-record
	// case recovery must detect by length or checksum.
	faultShort
	// faultCrash acts like faultShort and then fails every later
	// operation, modelling process death mid-append.
	faultCrash
)

// faultFS builds walFiles over real files with one injected fault: the
// failAt-th operation (counting every Write and Sync across all segments)
// misbehaves per mode. failAt = 0 never fires.
type faultFS struct {
	mu     sync.Mutex
	events int
	failAt int
	mode   int
	dead   bool
}

func (fs *faultFS) open(path string) (walFile, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.dead {
		return nil, errInjected
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, f: f}, nil
}

type faultFile struct {
	fs *faultFS
	f  *os.File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	fs := ff.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.dead {
		return 0, errInjected
	}
	fs.events++
	if fs.events == fs.failAt {
		switch fs.mode {
		case faultShort, faultCrash:
			if fs.mode == faultCrash {
				fs.dead = true
			}
			n, _ := ff.f.Write(p[:len(p)/2])
			return n, errInjected
		default:
			return 0, errInjected
		}
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	fs := ff.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.dead {
		return errInjected
	}
	fs.events++
	if fs.events == fs.failAt {
		if fs.mode == faultCrash {
			fs.dead = true
		}
		return errInjected
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }

// walStep is one commit of the crash workload, applied identically to the
// durable database and the in-memory twin.
type walStep func(db *Database) error

// findByName resolves an atom by its first (name) attribute — id-agnostic
// so steps replay identically on both databases.
func findByName(db *Database, typ, name string) (model.AtomID, bool) {
	var id model.AtomID
	found := false
	db.ScanAtoms(typ, func(a model.Atom) bool {
		if s, _ := a.Get(0).AsString(); s == name {
			id, found = a.ID, true
			return false
		}
		return true
	})
	return id, found
}

func mustFind(db *Database, typ, name string) model.AtomID {
	id, ok := findByName(db, typ, name)
	if !ok {
		panic(fmt.Sprintf("walcrash: no %s named %q", typ, name))
	}
	return id
}

// crashScript is the deterministic workload: every step is exactly one
// commit, covering each WAL opcode — DDL, insert, index, connect, update,
// a multi-op transaction, cascading deletes.
func crashScript() []walStep {
	partDesc := model.MustDesc(
		model.AttrDesc{Name: "name", Kind: model.KString, NotNull: true},
		model.AttrDesc{Name: "weight", Kind: model.KFloat},
	)
	supDesc := model.MustDesc(
		model.AttrDesc{Name: "name", Kind: model.KString, NotNull: true},
	)
	return []walStep{
		func(db *Database) error { _, err := db.DefineAtomType("part", partDesc); return err },
		func(db *Database) error { _, err := db.DefineAtomType("supplier", supDesc); return err },
		func(db *Database) error {
			_, err := db.DefineLinkType("supplies", model.LinkDesc{SideA: "supplier", SideB: "part"})
			return err
		},
		func(db *Database) error {
			_, err := db.InsertAtom("part", model.Str("bolt"), model.Float(0.1))
			return err
		},
		func(db *Database) error {
			_, err := db.InsertAtom("part", model.Str("nut"), model.Float(0.2))
			return err
		},
		func(db *Database) error { _, err := db.InsertAtom("supplier", model.Str("acme")); return err },
		func(db *Database) error { return db.CreateIndex("part", "name") },
		func(db *Database) error {
			return db.Connect("supplies", mustFind(db, "supplier", "acme"), mustFind(db, "part", "bolt"))
		},
		func(db *Database) error {
			return db.Connect("supplies", mustFind(db, "supplier", "acme"), mustFind(db, "part", "nut"))
		},
		func(db *Database) error {
			id := mustFind(db, "part", "bolt")
			return db.UpdateAtom("part", id, []model.Value{model.Str("bolt"), model.Float(0.5)})
		},
		func(db *Database) error {
			t := db.Begin()
			defer t.Rollback()
			id, err := t.InsertAtom("part", model.Str("cog"), model.Float(1.5))
			if err != nil {
				return err
			}
			if err := t.Connect("supplies", mustFind(db, "supplier", "acme"), id); err != nil {
				return err
			}
			if _, err := t.Disconnect("supplies", mustFind(db, "supplier", "acme"), mustFind(db, "part", "nut")); err != nil {
				return err
			}
			return t.Commit()
		},
		func(db *Database) error { _, err := db.DeleteAtom("part", mustFind(db, "part", "nut")); return err },
		func(db *Database) error {
			_, err := db.DeleteAtom("supplier", mustFind(db, "supplier", "acme"))
			return err
		},
		func(db *Database) error {
			_, err := db.InsertAtom("part", model.Str("washer"), model.Float(0.05))
			return err
		},
	}
}

// replayTwin applies the first k steps to a fresh in-memory database.
func replayTwin(t *testing.T, steps []walStep, k int) *Database {
	t.Helper()
	twin := NewDatabase()
	for i := 0; i < k; i++ {
		if err := steps[i](twin); err != nil {
			t.Fatalf("twin step %d: %v", i, err)
		}
	}
	return twin
}

// fingerprint renders the visible state — atoms, links, index definitions —
// as a canonical string for whole-database equality checks.
func fingerprint(db *Database) string {
	var b strings.Builder
	types := db.Schema().AtomTypes()
	sort.Slice(types, func(i, j int) bool { return types[i].Name < types[j].Name })
	for _, at := range types {
		var rows []string
		db.ScanAtoms(at.Name, func(a model.Atom) bool {
			vals := make([]string, len(a.Vals))
			for i, v := range a.Vals {
				vals[i] = v.String()
			}
			rows = append(rows, fmt.Sprintf("%d=%s", a.ID, strings.Join(vals, ",")))
			return true
		})
		sort.Strings(rows)
		fmt.Fprintf(&b, "atoms %s: %s\n", at.Name, strings.Join(rows, " "))
	}
	links := db.Schema().LinkTypes()
	sort.Slice(links, func(i, j int) bool { return links[i].Name < links[j].Name })
	for _, lt := range links {
		ls, ok := db.LinkStore(lt.Name)
		if !ok {
			continue
		}
		var rows []string
		ls.Scan(func(l model.Link) bool {
			rows = append(rows, fmt.Sprintf("%d-%d", l.A, l.B))
			return true
		})
		sort.Strings(rows)
		fmt.Fprintf(&b, "links %s: %s\n", lt.Name, strings.Join(rows, " "))
	}
	db.mu.RLock()
	ixs := make([]string, 0, len(db.indexes))
	for k := range db.indexes {
		ixs = append(ixs, k)
	}
	db.mu.RUnlock()
	sort.Strings(ixs)
	fmt.Fprintf(&b, "indexes: %s\n", strings.Join(ixs, " "))
	return b.String()
}

// runScript applies steps to db until the first error, returning how many
// commits were acknowledged.
func runScript(db *Database, steps []walStep) (acked int) {
	for _, s := range steps {
		if err := s(db); err != nil {
			return acked
		}
		acked++
	}
	return acked
}

// checkPrefixConsistent recovers dir and asserts the state equals the twin
// at commit acked or acked+1 (the in-flight commit may survive whole).
func checkPrefixConsistent(t *testing.T, dir string, steps []walStep, acked int, label string) {
	t.Helper()
	rec, err := Recover(dir)
	if err != nil {
		t.Fatalf("%s: recover: %v", label, err)
	}
	got := fingerprint(rec)
	want := []string{fingerprint(replayTwin(t, steps, acked))}
	if acked < len(steps) {
		want = append(want, fingerprint(replayTwin(t, steps, acked+1)))
	}
	for _, w := range want {
		if got == w {
			if err := rec.CheckIntegrity(); err != nil {
				t.Fatalf("%s: integrity after recovery: %v", label, err)
			}
			return
		}
	}
	t.Fatalf("%s: recovered state is no prefix of the workload (acked %d)\ngot:\n%s\nwant one of:\n%s",
		label, acked, got, strings.Join(want, "\n--- or ---\n"))
}

// TestCrashInjectionEveryPoint fails/short-writes/crashes the log at every
// single write and fsync the workload issues and checks every outcome
// recovers to a consistent prefix.
func TestCrashInjectionEveryPoint(t *testing.T) {
	steps := crashScript()

	// Dry run with the fault disarmed to learn how many injection points
	// the workload has (Close's final fsync included).
	probe := &faultFS{}
	dir := t.TempDir()
	db, err := openWith(dir, probe.open, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := runScript(db, steps); got != len(steps) {
		t.Fatalf("fault-free run acked %d of %d", got, len(steps))
	}
	db.Close()
	probe.mu.Lock()
	points := probe.events
	probe.mu.Unlock()
	if points < len(steps) {
		t.Fatalf("only %d injection points for %d commits", points, len(steps))
	}

	for mode, name := range map[int]string{faultFail: "fail", faultShort: "short", faultCrash: "crash"} {
		for at := 1; at <= points; at++ {
			label := fmt.Sprintf("%s@%d", name, at)
			fs := &faultFS{failAt: at, mode: mode}
			fdir := t.TempDir()
			fdb, err := openWith(fdir, fs.open, false)
			if err != nil {
				t.Fatalf("%s: open: %v", label, err)
			}
			acked := runScript(fdb, steps)
			fdb.Close()
			checkPrefixConsistent(t, fdir, steps, acked, label)
		}
	}
}

// lastWALSegment returns the path of the newest log segment in dir.
func lastWALSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments in %s (%v)", dir, err)
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		out.Close()
	}
	return dst
}

// TestTornTailRecovery truncates a healthy log at every byte offset inside
// its final records and appends garbage tails, asserting each mutilation
// recovers to SOME prefix of the workload — never a torn half-commit.
func TestTornTailRecovery(t *testing.T) {
	steps := crashScript()
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := runScript(db, steps); got != len(steps) {
		t.Fatalf("acked %d of %d", got, len(steps))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastWALSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	prefixes := make(map[string]int, len(steps)+1)
	for k := 0; k <= len(steps); k++ {
		prefixes[fingerprint(replayTwin(t, steps, k))] = k
	}

	// Cut every byte of the final quarter of the log and sample the rest.
	cuts := []int{}
	for c := len(data) - 1; c > 0; c-- {
		if c >= len(data)*3/4 || c%17 == 0 {
			cuts = append(cuts, c)
		}
	}
	lastK := len(steps) + 1
	for _, cut := range cuts {
		mdir := copyDir(t, dir)
		mseg := lastWALSegment(t, mdir)
		if err := os.Truncate(mseg, int64(cut)); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(mdir)
		if err != nil {
			t.Fatalf("cut@%d: recover: %v", cut, err)
		}
		k, ok := prefixes[fingerprint(rec)]
		if !ok {
			t.Fatalf("cut@%d: recovered state matches no workload prefix", cut)
		}
		if k > lastK {
			t.Fatalf("cut@%d: shorter log recovered MORE commits (%d after %d)", cut, k, lastK)
		}
		lastK = k

		// A truncated directory must also survive a writable re-open:
		// Open discards the torn tail and accepts new commits.
		wdb, err := Open(mdir)
		if err != nil {
			t.Fatalf("cut@%d: re-open: %v", cut, err)
		}
		wdb.Close()
	}

	// Garbage appended past the last full record must be discarded.
	for _, tail := range [][]byte{
		{0x00},
		{0xde, 0xad, 0xbe, 0xef},
		make([]byte, 64),
	} {
		mdir := copyDir(t, dir)
		mseg := lastWALSegment(t, mdir)
		f, err := os.OpenFile(mseg, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(tail)
		f.Close()
		rec, err := Recover(mdir)
		if err != nil {
			t.Fatalf("garbage tail: recover: %v", err)
		}
		if k := prefixes[fingerprint(rec)]; k != len(steps) {
			t.Fatalf("garbage tail: recovered %d of %d commits", k, len(steps))
		}
	}
}

// randOp is one entry of the randomized workload, interpreted against
// whatever state the prefix produced so it replays identically on the
// durable database and the twin.
type randOp struct {
	kind int // 0 insert1, 1 insert2, 2 update, 3 delete, 4 connect, 5 disconnect, 6 txn
	k, j int
	val  int64
}

func randomScript(rng *rand.Rand, n int) []walStep {
	d1 := model.MustDesc(
		model.AttrDesc{Name: "name", Kind: model.KString, NotNull: true},
		model.AttrDesc{Name: "n", Kind: model.KInt},
	)
	d2 := model.MustDesc(model.AttrDesc{Name: "name", Kind: model.KString, NotNull: true})
	steps := []walStep{
		func(db *Database) error { _, err := db.DefineAtomType("t1", d1); return err },
		func(db *Database) error { _, err := db.DefineAtomType("t2", d2); return err },
		func(db *Database) error {
			_, err := db.DefineLinkType("l12", model.LinkDesc{SideA: "t1", SideB: "t2"})
			return err
		},
	}
	seq := 0
	ids := func(db *Database, typ string) []model.AtomID {
		var out []model.AtomID
		db.ScanAtoms(typ, func(a model.Atom) bool { out = append(out, a.ID); return true })
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for i := 0; i < n; i++ {
		op := randOp{kind: rng.Intn(7), k: rng.Int(), j: rng.Int(), val: rng.Int63n(1000)}
		seq++
		name := fmt.Sprintf("a%d", seq)
		steps = append(steps, func(db *Database) error {
			switch op.kind {
			case 0:
				_, err := db.InsertAtom("t1", model.Str(name), model.Int(op.val))
				return err
			case 1:
				_, err := db.InsertAtom("t2", model.Str(name))
				return err
			case 2:
				xs := ids(db, "t1")
				if len(xs) == 0 {
					_, err := db.InsertAtom("t1", model.Str(name), model.Int(op.val))
					return err
				}
				id := xs[op.k%len(xs)]
				a, _ := db.GetAtom("t1", id)
				return db.UpdateAtom("t1", id, []model.Value{a.Get(0), model.Int(op.val)})
			case 3:
				xs := ids(db, "t1")
				if len(xs) == 0 {
					_, err := db.InsertAtom("t1", model.Str(name), model.Int(op.val))
					return err
				}
				_, err := db.DeleteAtom("t1", xs[op.k%len(xs)])
				return err
			case 4, 5:
				xs, ys := ids(db, "t1"), ids(db, "t2")
				if len(xs) == 0 || len(ys) == 0 {
					_, err := db.InsertAtom("t2", model.Str(name))
					return err
				}
				a, b2 := xs[op.k%len(xs)], ys[op.j%len(ys)]
				if op.kind == 4 {
					return db.Connect("l12", a, b2)
				}
				_, err := db.Disconnect("l12", a, b2)
				return err
			default:
				t := db.Begin()
				defer t.Rollback()
				id, err := t.InsertAtom("t1", model.Str(name), model.Int(op.val))
				if err != nil {
					return err
				}
				if ys := ids(db, "t2"); len(ys) > 0 {
					if err := t.Connect("l12", id, ys[op.j%len(ys)]); err != nil {
						return err
					}
				}
				return t.Commit()
			}
		})
	}
	return steps
}

// TestRecoveryRoundTripRandom runs seeded random workloads, crashes the
// log at a random operation, and checks recovery lands on the acked
// prefix (or one commit past it), passes CheckIntegrity, and vacuums down
// to exactly the twin's version count.
func TestRecoveryRoundTripRandom(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			steps := randomScript(rng, 60)

			// Fault-free probe: count injection points.
			probe := &faultFS{}
			pdir := t.TempDir()
			pdb, err := openWith(pdir, probe.open, false)
			if err != nil {
				t.Fatal(err)
			}
			if got := runScript(pdb, steps); got != len(steps) {
				t.Fatalf("fault-free run acked %d of %d", got, len(steps))
			}
			pdb.Close()
			probe.mu.Lock()
			points := probe.events
			probe.mu.Unlock()

			at := 1 + rng.Intn(points)
			fs := &faultFS{failAt: at, mode: faultCrash}
			dir := t.TempDir()
			db, err := openWith(dir, fs.open, false)
			if err != nil {
				t.Fatal(err)
			}
			acked := runScript(db, steps)
			db.Close()

			rec, err := Recover(dir)
			if err != nil {
				t.Fatalf("crash@%d: recover: %v", at, err)
			}
			got := fingerprint(rec)
			k := -1
			for _, cand := range []int{acked, acked + 1} {
				if cand <= len(steps) && fingerprint(replayTwin(t, steps, cand)) == got {
					k = cand
					break
				}
			}
			if k < 0 {
				t.Fatalf("crash@%d: recovered state is no prefix (acked %d)\n%s", at, acked, got)
			}
			if err := rec.CheckIntegrity(); err != nil {
				t.Fatalf("crash@%d: integrity: %v", at, err)
			}
			twin := replayTwin(t, steps, k)
			rec.Vacuum()
			twin.Vacuum()
			if rv, tv := rec.VersionCount(), twin.VersionCount(); rv != tv {
				t.Fatalf("crash@%d: version count after vacuum: recovered %d, twin %d", at, rv, tv)
			}
		})
	}
}

// slowFS wraps real files with an artificially slow fsync, making fsync
// batching observable regardless of how fast the test filesystem is.
type slowFS struct{}

func (slowFS) open(path string) (walFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return slowFile{f}, nil
}

type slowFile struct{ f *os.File }

func (sf slowFile) Write(p []byte) (int, error) { return sf.f.Write(p) }
func (sf slowFile) Sync() error {
	busySleep()
	return sf.f.Sync()
}
func (sf slowFile) Close() error { return sf.f.Close() }

// busySleep delays ~1ms without the scheduler-granularity noise of
// time.Sleep on loaded CI machines.
func busySleep() {
	x := 0
	for i := 0; i < 1<<16; i++ {
		x += i
	}
	_ = x
}

// TestGroupCommitBatchesFsyncs checks the group-commit contract end to
// end: with 16 concurrent committers one flusher fsync acknowledges many
// appends, while per-commit mode degrades to one fsync per record.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	const writers, perWriter = 16, 20

	run := func(perCommitSync bool) (appends, syncs int64) {
		dir := t.TempDir()
		db, err := openWith(dir, slowFS{}.open, perCommitSync)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		d := model.MustDesc(model.AttrDesc{Name: "n", Kind: model.KInt})
		if _, err := db.DefineAtomType("t", d); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					if _, err := db.InsertAtom("t", model.Int(int64(w*1000+i))); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		return db.WALCounters()
	}

	appends, syncs := run(false)
	if want := int64(writers*perWriter + 1); appends != want {
		t.Fatalf("group: appends = %d, want %d", appends, want)
	}
	if syncs >= appends/2 {
		t.Fatalf("group commit did not batch: %d fsyncs for %d appends", syncs, appends)
	}

	nAppends, nSyncs := run(true)
	if nSyncs < nAppends {
		t.Fatalf("per-commit mode batched: %d fsyncs for %d appends", nSyncs, nAppends)
	}
}

// TestCheckpointPinsAgainstVacuum commits and vacuums WHILE a checkpoint
// holds its pin (via the test hook that runs between pin and encode) and
// asserts the vacuum horizon stops at the checkpoint's timestamp — then
// proves the point by recovering and comparing against the live state.
func TestCheckpointPinsAgainstVacuum(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := model.MustDesc(
		model.AttrDesc{Name: "name", Kind: model.KString, NotNull: true},
		model.AttrDesc{Name: "n", Kind: model.KInt},
	)
	if _, err := db.DefineAtomType("t", d); err != nil {
		t.Fatal(err)
	}
	ids := make([]model.AtomID, 0, 20)
	for i := 0; i < 20; i++ {
		id, err := db.InsertAtom("t", model.Str(fmt.Sprintf("a%d", i)), model.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	var horizon uint64
	db.ckptTestHook = func() {
		// The checkpoint's read view is pinned; overwrite every atom so
		// the pre-pin versions are exactly what vacuum would love to
		// reclaim, then vacuum.
		for i, id := range ids {
			if err := db.UpdateAtom("t", id, []model.Value{model.Str(fmt.Sprintf("a%d", i)), model.Int(int64(i + 100))}); err != nil {
				t.Errorf("in-hook update: %v", err)
			}
		}
		horizon = db.Vacuum().Horizon
	}
	cs, err := db.Checkpoint()
	db.ckptTestHook = nil
	if err != nil {
		t.Fatal(err)
	}
	if horizon > cs.TS {
		t.Fatalf("vacuum horizon %d passed the checkpoint pin %d", horizon, cs.TS)
	}

	// The checkpoint encoded the pinned view and the log holds the in-hook
	// updates; recovery must reproduce the live state exactly.
	live := fingerprint(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(rec); got != live {
		t.Fatalf("recovered state diverges from live state\nlive:\n%s\ngot:\n%s", live, got)
	}
	for i, id := range ids {
		a, ok := rec.GetAtom("t", id)
		if !ok {
			t.Fatalf("atom %d lost", id)
		}
		if n, _ := a.Get(1).AsInt(); n != int64(i+100) {
			t.Fatalf("atom %d: n = %d, want %d (post-pin update lost)", id, n, i+100)
		}
	}
}

// TestMidCheckpointCrashFallsBack freezes the directory at the moment a
// second checkpoint has rotated the log but not yet written its snapshot
// (plus a stale tmp file, as a crash mid-encode leaves), and checks
// recovery falls back to the first checkpoint plus a longer log replay —
// losing nothing.
func TestMidCheckpointCrashFallsBack(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := model.MustDesc(model.AttrDesc{Name: "n", Kind: model.KInt})
	if _, err := db.DefineAtomType("t", d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.InsertAtom("t", model.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 25; i++ {
		if _, err := db.InsertAtom("t", model.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	want := fingerprint(db)

	var frozen string
	db.ckptTestHook = func() { frozen = copyDir(t, dir) }
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.ckptTestHook = nil
	db.Close()
	if frozen == "" {
		t.Fatal("checkpoint hook never ran")
	}
	// A crash mid-encode also leaves a partial tmp file behind.
	if err := os.WriteFile(filepath.Join(frozen, ckptTmpFile), []byte("partial checkpoint garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(frozen)
	if err != nil {
		t.Fatalf("open after mid-checkpoint crash: %v", err)
	}
	defer rec.Close()
	if got := fingerprint(rec); got != want {
		t.Fatalf("fallback recovery lost data\nwant:\n%s\ngot:\n%s", want, got)
	}
	if _, err := os.Stat(filepath.Join(frozen, ckptTmpFile)); !os.IsNotExist(err) {
		t.Fatalf("stale checkpoint tmp not removed (stat err %v)", err)
	}
}

// TestCheckpointTruncatesLog checks the log shrinks to the current segment
// after a checkpoint and that recovery still sees everything.
func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := model.MustDesc(model.AttrDesc{Name: "n", Kind: model.KInt})
	if _, err := db.DefineAtomType("t", d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.InsertAtom("t", model.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	cs, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cs.SegmentsRemoved == 0 {
		t.Fatal("checkpoint removed no segments")
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 1 {
		t.Fatalf("segments after checkpoint = %d, want 1", len(segs))
	}
	want := fingerprint(db)
	db.Close()
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(rec); got != want {
		t.Fatalf("post-checkpoint recovery diverged\nwant:\n%s\ngot:\n%s", want, got)
	}
}
