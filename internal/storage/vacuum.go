package storage

import (
	"sync"
	"time"
)

// VacuumStats reports one vacuum pass: how many version nodes were
// reclaimed and the horizon the pass ran at.
type VacuumStats struct {
	Reclaimed int
	Horizon   uint64
}

// VacuumHorizon returns the commit timestamp below which no live
// snapshot can look: the oldest pinned snapshot, or the latest published
// commit when nothing is pinned. Versions strictly older than the newest
// version at or below the horizon are unreachable and safe to reclaim.
//
// latestTS is loaded BEFORE the snapshot registry is consulted and the
// minimum of the two is returned: a snapshot pinned after the registry
// check necessarily pins a timestamp >= that latest, so a horizon capped
// at it can never reclaim versions a concurrently-opened snapshot needs.
// (The other order races: a reader pins ts=S and a writer commits S+1
// between the two loads, and a horizon of S+1 severs versions the live
// snapshot at S still reads.)
func (db *Database) VacuumHorizon() uint64 {
	latest := db.latestTS.Load()
	if ts, ok := db.oldestLiveSnapshot(); ok && ts < latest {
		return ts
	}
	return latest
}

// Vacuum reclaims version-chain nodes no live snapshot can reach: for
// every chain it keeps the newest version at or below the horizon as the
// new tail and severs everything older, and removes slots whose entire
// reachable history is a tombstone or empty list. Safe to run while
// readers stream and writers commit; it takes each occurrence's write
// latch briefly, never the commit mutex.
func (db *Database) Vacuum() VacuumStats {
	horizon := db.VacuumHorizon()
	db.mu.RLock()
	containers := make([]*Container, 0, len(db.containers))
	for _, c := range db.containers {
		containers = append(containers, c)
	}
	stores := make([]*LinkStore, 0, len(db.links))
	for _, ls := range db.links {
		stores = append(stores, ls)
	}
	indexes := make([]*Index, 0, len(db.indexes))
	for _, ix := range db.indexes {
		indexes = append(indexes, ix)
	}
	db.mu.RUnlock()
	st := VacuumStats{Horizon: horizon}
	for _, c := range containers {
		st.Reclaimed += c.vacuum(horizon)
	}
	for _, ls := range stores {
		st.Reclaimed += ls.vacuum(horizon)
	}
	for _, ix := range indexes {
		st.Reclaimed += ix.vacuum(horizon)
	}
	return st
}

// VersionCount reports the total number of version nodes across every
// occurrence and index — the metric snapshot/GC tests leak-check: it must
// shrink back once snapshots close and vacuum runs.
func (db *Database) VersionCount() int {
	db.mu.RLock()
	containers := make([]*Container, 0, len(db.containers))
	for _, c := range db.containers {
		containers = append(containers, c)
	}
	stores := make([]*LinkStore, 0, len(db.links))
	for _, ls := range db.links {
		stores = append(stores, ls)
	}
	indexes := make([]*Index, 0, len(db.indexes))
	for _, ix := range db.indexes {
		indexes = append(indexes, ix)
	}
	db.mu.RUnlock()
	n := 0
	for _, c := range containers {
		n += c.versionCount()
	}
	for _, ls := range stores {
		n += ls.versionCount()
	}
	for _, ix := range indexes {
		n += ix.versionCount()
	}
	return n
}

// StartVacuum launches a background goroutine that vacuums at the given
// interval, reclaiming versions older than the oldest live snapshot. The
// returned stop function halts it and waits for the in-flight pass (stop
// is idempotent).
func (db *Database) StartVacuum(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				db.Vacuum()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
