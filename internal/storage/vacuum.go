package storage

import (
	"sync"
	"time"
)

// VacuumStats reports one vacuum pass: how many version nodes were
// reclaimed, the horizon the pass ran at, and the version-chain pressure
// REMAINING after the pass — chains a pinned snapshot or write-heavy
// load kept long. The background vacuum uses the residual pressure to
// tighten its cadence.
type VacuumStats struct {
	Reclaimed int
	Horizon   uint64

	// Chains counts the version chains across every occurrence and
	// index after the pass; MeanChain and MaxChain are their mean and
	// maximum length. A mean near 1 means versions collapse as fast as
	// writers stack them; a climbing mean or max signals the horizon is
	// stuck (an old pin) or the cadence is too slow for the write rate.
	Chains    int
	MeanChain float64
	MaxChain  int
}

// VacuumHorizon returns the commit timestamp below which no live
// snapshot can look: the oldest pinned snapshot, or the latest published
// commit when nothing is pinned. Versions strictly older than the newest
// version at or below the horizon are unreachable and safe to reclaim.
//
// latestTS is loaded BEFORE the snapshot registry is consulted and the
// minimum of the two is returned: a snapshot pinned after the registry
// check necessarily pins a timestamp >= that latest, so a horizon capped
// at it can never reclaim versions a concurrently-opened snapshot needs.
// (The other order races: a reader pins ts=S and a writer commits S+1
// between the two loads, and a horizon of S+1 severs versions the live
// snapshot at S still reads.)
func (db *Database) VacuumHorizon() uint64 {
	latest := db.latestTS.Load()
	if ts, ok := db.oldestLiveSnapshot(); ok && ts < latest {
		return ts
	}
	return latest
}

// Vacuum reclaims version-chain nodes no live snapshot can reach: for
// every chain it keeps the newest version at or below the horizon as the
// new tail and severs everything older, and removes slots whose entire
// reachable history is a tombstone or empty list. Safe to run while
// readers stream and writers commit; it takes each occurrence's write
// latch briefly, never the commit mutex.
func (db *Database) Vacuum() VacuumStats {
	horizon := db.VacuumHorizon()
	db.mu.RLock()
	containers := make([]*Container, 0, len(db.containers))
	for _, c := range db.containers {
		containers = append(containers, c)
	}
	stores := make([]*LinkStore, 0, len(db.links))
	for _, ls := range db.links {
		stores = append(stores, ls)
	}
	indexes := make([]*Index, 0, len(db.indexes))
	for _, ix := range db.indexes {
		indexes = append(indexes, ix)
	}
	db.mu.RUnlock()
	st := VacuumStats{Horizon: horizon}
	for _, c := range containers {
		st.Reclaimed += c.vacuum(horizon)
	}
	for _, ls := range stores {
		st.Reclaimed += ls.vacuum(horizon)
	}
	for _, ix := range indexes {
		st.Reclaimed += ix.vacuum(horizon)
	}
	nodes := 0
	fold := func(chains, n, maxLen int) {
		st.Chains += chains
		nodes += n
		if maxLen > st.MaxChain {
			st.MaxChain = maxLen
		}
	}
	for _, c := range containers {
		fold(c.chainStats())
	}
	for _, ls := range stores {
		fold(ls.chainStats())
	}
	for _, ix := range indexes {
		fold(ix.chainStats())
	}
	if st.Chains > 0 {
		st.MeanChain = float64(nodes) / float64(st.Chains)
	}
	return st
}

// VersionCount reports the total number of version nodes across every
// occurrence and index — the metric snapshot/GC tests leak-check: it must
// shrink back once snapshots close and vacuum runs.
func (db *Database) VersionCount() int {
	db.mu.RLock()
	containers := make([]*Container, 0, len(db.containers))
	for _, c := range db.containers {
		containers = append(containers, c)
	}
	stores := make([]*LinkStore, 0, len(db.links))
	for _, ls := range db.links {
		stores = append(stores, ls)
	}
	indexes := make([]*Index, 0, len(db.indexes))
	for _, ix := range db.indexes {
		indexes = append(indexes, ix)
	}
	db.mu.RUnlock()
	n := 0
	for _, c := range containers {
		n += c.versionCount()
	}
	for _, ls := range stores {
		n += ls.versionCount()
	}
	for _, ix := range indexes {
		n += ix.versionCount()
	}
	return n
}

// Chain-pressure thresholds for the adaptive vacuum cadence: a residual
// mean chain length or max chain past these marks halves the interval;
// past double the marks it quarters.
const (
	chainPressureMean = 2.0
	chainPressureMax  = 16
)

// nextVacuumInterval picks the delay before the next background pass
// from the residual chain pressure the last one left behind: base under
// light pressure, base/2 once chains stay long, base/4 under heavy
// write load — floored at a millisecond so pathological pressure cannot
// spin the goroutine.
func nextVacuumInterval(base time.Duration, st VacuumStats) time.Duration {
	next := base
	switch {
	case st.MeanChain >= 2*chainPressureMean || st.MaxChain >= 2*chainPressureMax:
		next = base / 4
	case st.MeanChain >= chainPressureMean || st.MaxChain >= chainPressureMax:
		next = base / 2
	}
	if next < time.Millisecond {
		next = time.Millisecond
	}
	return next
}

// StartVacuum launches a background goroutine that vacuums at the given
// base interval, reclaiming versions older than the oldest live
// snapshot. The cadence is adaptive: when a pass leaves high residual
// chain pressure behind (write-heavy load stacking versions faster than
// the base cadence collapses them), the next pass runs at base/2 or
// base/4 — and relaxes back to base once the pressure drains. The
// returned stop function halts it and waits for the in-flight pass
// (stop is idempotent).
func (db *Database) StartVacuum(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTimer(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				st := db.Vacuum()
				t.Reset(nextVacuumInterval(interval, st))
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
