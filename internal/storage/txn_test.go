package storage_test

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"mad/internal/codec"
	"mad/internal/model"
	"mad/internal/storage"
)

// txnDB builds a small database with a reflexive link type.
func txnDB(t testing.TB) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	if _, err := db.DefineAtomType("n", model.MustDesc(
		model.AttrDesc{Name: "v", Kind: model.KInt},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineLinkType("e", model.LinkDesc{SideA: "n", SideB: "n"}); err != nil {
		t.Fatal(err)
	}
	return db
}

// snapshot produces a canonical fingerprint of the database's *logical*
// state: per atom type the sorted set of (id, values), per link type the
// sorted set of links. Buffered transactions never leak partial state, so
// the fingerprint before Begin and after Rollback must match exactly.
// (The codec round-trip below additionally confirms the state is
// serializable.)
func snapshot(t testing.TB, db *storage.Database) []byte {
	t.Helper()
	var probe bytes.Buffer
	if err := codec.Encode(db, &probe); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, at := range db.Schema().AtomTypes() {
		c, _ := db.Container(at.Name)
		c.Scan(func(a model.Atom) bool {
			lines = append(lines, "a|"+at.Name+"|"+a.String())
			return true
		})
	}
	for _, lt := range db.Schema().LinkTypes() {
		ls, _ := db.LinkStore(lt.Name)
		ls.Scan(func(l model.Link) bool {
			lines = append(lines, "l|"+lt.Name+"|"+l.Canonical(lt.Desc.Reflexive()).String())
			return true
		})
	}
	sort.Strings(lines)
	return []byte(strings.Join(lines, "\n"))
}

func TestTxnCommitKeepsMutations(t *testing.T) {
	db := txnDB(t)
	txn := db.Begin()
	a, err := txn.InsertAtom("n", model.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := txn.InsertAtom("n", model.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Connect("e", a, b); err != nil {
		t.Fatal(err)
	}
	if txn.Mutations() != 3 {
		t.Fatalf("mutations = %d", txn.Mutations())
	}
	// Buffered writes are invisible until Commit publishes them.
	if db.TotalAtoms() != 0 || db.TotalLinks() != 0 {
		t.Fatal("buffered writes leaked before commit")
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.TotalAtoms() != 2 || db.TotalLinks() != 1 {
		t.Fatal("commit lost mutations")
	}
	if err := txn.Rollback(); err == nil {
		t.Fatal("rollback after commit must fail")
	}
}

func TestTxnRollbackRestoresExactState(t *testing.T) {
	db := txnDB(t)
	// Pre-transaction state: two linked atoms.
	a, _ := db.InsertAtom("n", model.Int(1))
	b, _ := db.InsertAtom("n", model.Int(2))
	if err := db.Connect("e", a, b); err != nil {
		t.Fatal(err)
	}
	before := snapshot(t, db)

	txn := db.Begin()
	c, err := txn.InsertAtom("n", model.Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Connect("e", b, c); err != nil {
		t.Fatal(err)
	}
	if err := txn.UpdateAtom("n", a, []model.Value{model.Int(99)}); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Disconnect("e", a, b); err != nil {
		t.Fatal(err)
	}
	if err := txn.DeleteAtom("n", b); err != nil {
		t.Fatal(err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	after := snapshot(t, db)
	if !bytes.Equal(before, after) {
		t.Fatal("rollback did not restore the exact pre-transaction state")
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnDeleteCascadeBuffersUntilCommit(t *testing.T) {
	db := txnDB(t)
	hub, _ := db.InsertAtom("n", model.Int(0))
	var spokes []model.AtomID
	for i := 0; i < 5; i++ {
		s, _ := db.InsertAtom("n", model.Int(int64(i+1)))
		spokes = append(spokes, s)
		if err := db.Connect("e", hub, s); err != nil {
			t.Fatal(err)
		}
	}
	// A spoke-to-spoke link that must survive the cascade.
	if err := db.Connect("e", spokes[0], spokes[1]); err != nil {
		t.Fatal(err)
	}
	before := snapshot(t, db)
	txn := db.Begin()
	if err := txn.DeleteAtom("n", hub); err != nil {
		t.Fatal(err)
	}
	// The cascade is buffered: every link is still visible.
	if db.TotalLinks() != 6 {
		t.Fatalf("buffered cascade leaked: %d links visible", db.TotalLinks())
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, snapshot(t, db)) {
		t.Fatal("rollback changed state")
	}
	// Committing the same delete drops the atom and every incident link
	// atomically.
	txn = db.Begin()
	if err := txn.DeleteAtom("n", hub); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.TotalLinks() != 1 {
		t.Fatalf("cascade wrong: %d links left, want the spoke-to-spoke one", db.TotalLinks())
	}
	if db.TotalAtoms() != 5 {
		t.Fatalf("atoms = %d", db.TotalAtoms())
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnIdempotentConnectRollback(t *testing.T) {
	db := txnDB(t)
	a, _ := db.InsertAtom("n", model.Int(1))
	b, _ := db.InsertAtom("n", model.Int(2))
	if err := db.Connect("e", a, b); err != nil {
		t.Fatal(err)
	}
	txn := db.Begin()
	// Connecting an existing link is a no-op; rollback must NOT remove it.
	if err := txn.Connect("e", a, b); err != nil {
		t.Fatal(err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.CountLinks("e"); n != 1 {
		t.Fatal("rollback removed a pre-existing link")
	}
}

func TestTxnUseAfterFinish(t *testing.T) {
	db := txnDB(t)
	txn := db.Begin()
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.InsertAtom("n", model.Int(1)); err == nil {
		t.Fatal("insert after commit must fail")
	}
	if err := txn.Connect("e", 1, 2); err == nil {
		t.Fatal("connect after commit must fail")
	}
	if err := txn.Rollback(); err == nil {
		t.Fatal("rollback after commit must fail")
	}
	txn = db.Begin()
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := txn.Rollback(); err == nil {
		t.Fatal("double rollback must fail")
	}
	if err := txn.Commit(); err == nil {
		t.Fatal("commit after rollback must fail")
	}
}

// TestTxnAbandonedMidBatchLeavesNothing models an owner goroutine that
// errors partway through a batch and simply abandons the transaction:
// zero versions may ever become visible, even without a Rollback call.
func TestTxnAbandonedMidBatchLeavesNothing(t *testing.T) {
	db := txnDB(t)
	keep, _ := db.InsertAtom("n", model.Int(7))
	before := snapshot(t, db)
	versions := db.VersionCount()

	txn := db.Begin()
	if _, err := txn.InsertAtom("n", model.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := txn.UpdateAtom("n", keep, []model.Value{model.Int(8)}); err != nil {
		t.Fatal(err)
	}
	// The batch errors here: wrong arity must be rejected at buffer time…
	if err := txn.UpdateAtom("n", keep, []model.Value{model.Int(1), model.Int(2)}); err == nil {
		t.Fatal("invalid update must fail at buffer time")
	}
	// …and the owner walks away without Commit or Rollback.
	txn = nil

	if !bytes.Equal(before, snapshot(t, db)) {
		t.Fatal("abandoned transaction leaked state")
	}
	if got := db.VersionCount(); got != versions {
		t.Fatalf("abandoned transaction leaked versions: %d -> %d", versions, got)
	}
}

// TestTxnCommitConflictInstallsNothing drives a commit-time failure: the
// transaction connects to an atom a concurrent auto-commit deletes after
// Begin. The commit must fail as a unit, leaving zero versions visible.
func TestTxnCommitConflictInstallsNothing(t *testing.T) {
	db := txnDB(t)
	a, _ := db.InsertAtom("n", model.Int(1))
	victim, _ := db.InsertAtom("n", model.Int(2))

	txn := db.Begin()
	if _, err := txn.InsertAtom("n", model.Int(3)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Connect("e", a, victim); err != nil {
		t.Fatal(err)
	}
	// Concurrent writer removes the endpoint between Begin and Commit.
	if _, err := db.DeleteAtom("n", victim); err != nil {
		t.Fatal(err)
	}
	before := snapshot(t, db)
	versions := db.VersionCount()
	if err := txn.Commit(); err == nil {
		t.Fatal("commit with a deleted endpoint must fail")
	}
	if !bytes.Equal(before, snapshot(t, db)) {
		t.Fatal("failed commit leaked state")
	}
	if got := db.VersionCount(); got != versions {
		t.Fatalf("failed commit leaked versions: %d -> %d", versions, got)
	}
	if err := txn.Rollback(); err == nil {
		t.Fatal("rollback after a failed commit must still be a hard error")
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestTxnSnapshotIsolationFromWriter pins a snapshot, commits a
// transaction, and checks the snapshot still serves the old state while
// the latest view serves the new one.
func TestTxnSnapshotIsolationFromWriter(t *testing.T) {
	db := txnDB(t)
	a, _ := db.InsertAtom("n", model.Int(1))
	snap := db.Snapshot()
	defer snap.Close()

	txn := db.Begin()
	if err := txn.UpdateAtom("n", a, []model.Value{model.Int(2)}); err != nil {
		t.Fatal(err)
	}
	b, err := txn.InsertAtom("n", model.Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Connect("e", a, b); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	if got, _ := snap.GetAtom("n", a); got.Get(0).String() != "1" {
		t.Fatalf("snapshot sees updated value %v", got.Get(0))
	}
	if snap.HasAtom("n", b) {
		t.Fatal("snapshot sees an atom committed after it was taken")
	}
	if n, _ := snap.CountLinks("e"); n != 0 {
		t.Fatal("snapshot sees links committed after it was taken")
	}
	if got, _ := db.GetAtom("n", a); got.Get(0).String() != "2" {
		t.Fatalf("latest view missed the update: %v", got.Get(0))
	}
	if !db.HasAtom("n", b) || db.TotalLinks() != 1 {
		t.Fatal("latest view missed the commit")
	}
}

// TestTxnRollbackPropertyRandomOps drives random transactional mutation
// sequences and checks that rollback always restores the byte-exact
// pre-transaction snapshot.
func TestTxnRollbackPropertyRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := txnDB(t)
		// Seed state outside the transaction.
		var live []model.AtomID
		for i := 0; i < 8; i++ {
			id, err := db.InsertAtom("n", model.Int(int64(i)))
			if err != nil {
				return false
			}
			live = append(live, id)
		}
		for i := 0; i < 6; i++ {
			a := live[rng.Intn(len(live))]
			b := live[rng.Intn(len(live))]
			if a != b {
				if err := db.Connect("e", a, b); err != nil {
					return false
				}
			}
		}
		before := snapshot(t, db)
		txn := db.Begin()
		inTxn := append([]model.AtomID(nil), live...)
		for op := 0; op < 30; op++ {
			switch r := rng.Intn(10); {
			case r < 3:
				id, err := txn.InsertAtom("n", model.Int(int64(100+op)))
				if err != nil {
					return false
				}
				inTxn = append(inTxn, id)
			case r < 6 && len(inTxn) >= 2:
				a := inTxn[rng.Intn(len(inTxn))]
				b := inTxn[rng.Intn(len(inTxn))]
				if a == b {
					continue
				}
				if err := txn.Connect("e", a, b); err != nil {
					return false
				}
			case r < 7 && len(inTxn) >= 2:
				a := inTxn[rng.Intn(len(inTxn))]
				b := inTxn[rng.Intn(len(inTxn))]
				if _, err := txn.Disconnect("e", a, b); err != nil {
					return false
				}
			case r < 8 && len(inTxn) > 0:
				id := inTxn[rng.Intn(len(inTxn))]
				if err := txn.UpdateAtom("n", id, []model.Value{model.Int(int64(rng.Intn(1000)))}); err != nil {
					return false
				}
			default:
				if len(inTxn) == 0 {
					continue
				}
				i := rng.Intn(len(inTxn))
				if err := txn.DeleteAtom("n", inTxn[i]); err != nil {
					return false
				}
				inTxn = append(inTxn[:i], inTxn[i+1:]...)
			}
		}
		// Buffered writes stay invisible throughout.
		if !bytes.Equal(before, snapshot(t, db)) {
			return false
		}
		if err := txn.Rollback(); err != nil {
			return false
		}
		if db.CheckIntegrity() != nil {
			return false
		}
		return bytes.Equal(before, snapshot(t, db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestTxnCommitPropertyRandomOps is the committing twin: random buffered
// batches must install atomically and leave an integral database.
func TestTxnCommitPropertyRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := txnDB(t)
		var live []model.AtomID
		for i := 0; i < 8; i++ {
			id, err := db.InsertAtom("n", model.Int(int64(i)))
			if err != nil {
				return false
			}
			live = append(live, id)
		}
		txn := db.Begin()
		inTxn := append([]model.AtomID(nil), live...)
		for op := 0; op < 30; op++ {
			switch r := rng.Intn(10); {
			case r < 4:
				id, err := txn.InsertAtom("n", model.Int(int64(100+op)))
				if err != nil {
					return false
				}
				inTxn = append(inTxn, id)
			case r < 7 && len(inTxn) >= 2:
				a := inTxn[rng.Intn(len(inTxn))]
				b := inTxn[rng.Intn(len(inTxn))]
				if a == b {
					continue
				}
				if err := txn.Connect("e", a, b); err != nil {
					return false
				}
			case r < 8 && len(inTxn) > 0:
				id := inTxn[rng.Intn(len(inTxn))]
				if err := txn.UpdateAtom("n", id, []model.Value{model.Int(int64(rng.Intn(1000)))}); err != nil {
					return false
				}
			default:
				if len(inTxn) == 0 {
					continue
				}
				i := rng.Intn(len(inTxn))
				if err := txn.DeleteAtom("n", inTxn[i]); err != nil {
					return false
				}
				inTxn = append(inTxn[:i], inTxn[i+1:]...)
			}
		}
		if err := txn.Commit(); err != nil {
			return false
		}
		if db.CheckIntegrity() != nil {
			return false
		}
		// Committed membership matches the overlay's bookkeeping.
		return db.TotalAtoms() == len(inTxn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
