package storage_test

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"mad/internal/codec"
	"mad/internal/model"
	"mad/internal/storage"
)

// txnDB builds a small database with a reflexive link type.
func txnDB(t testing.TB) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	if _, err := db.DefineAtomType("n", model.MustDesc(
		model.AttrDesc{Name: "v", Kind: model.KInt},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineLinkType("e", model.LinkDesc{SideA: "n", SideB: "n"}); err != nil {
		t.Fatal(err)
	}
	return db
}

// snapshot produces a canonical fingerprint of the database's *logical*
// state: per atom type the sorted set of (id, values), per link type the
// sorted set of links. Rollback restores logical state, not physical
// insertion order, so comparison must be order-insensitive. (The codec
// round-trip below additionally confirms the state is serializable.)
func snapshot(t testing.TB, db *storage.Database) []byte {
	t.Helper()
	var probe bytes.Buffer
	if err := codec.Encode(db, &probe); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, at := range db.Schema().AtomTypes() {
		c, _ := db.Container(at.Name)
		c.Scan(func(a model.Atom) bool {
			lines = append(lines, "a|"+at.Name+"|"+a.String())
			return true
		})
	}
	for _, lt := range db.Schema().LinkTypes() {
		ls, _ := db.LinkStore(lt.Name)
		ls.Scan(func(l model.Link) bool {
			lines = append(lines, "l|"+lt.Name+"|"+l.Canonical(lt.Desc.Reflexive()).String())
			return true
		})
	}
	sort.Strings(lines)
	return []byte(strings.Join(lines, "\n"))
}

func TestTxnCommitKeepsMutations(t *testing.T) {
	db := txnDB(t)
	txn := db.Begin()
	a, err := txn.InsertAtom("n", model.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := txn.InsertAtom("n", model.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Connect("e", a, b); err != nil {
		t.Fatal(err)
	}
	if txn.Mutations() != 3 {
		t.Fatalf("mutations = %d", txn.Mutations())
	}
	txn.Commit()
	if db.TotalAtoms() != 2 || db.TotalLinks() != 1 {
		t.Fatal("commit lost mutations")
	}
	if err := txn.Rollback(); err == nil {
		t.Fatal("rollback after commit must fail")
	}
}

func TestTxnRollbackRestoresExactState(t *testing.T) {
	db := txnDB(t)
	// Pre-transaction state: two linked atoms.
	a, _ := db.InsertAtom("n", model.Int(1))
	b, _ := db.InsertAtom("n", model.Int(2))
	if err := db.Connect("e", a, b); err != nil {
		t.Fatal(err)
	}
	before := snapshot(t, db)

	txn := db.Begin()
	c, err := txn.InsertAtom("n", model.Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Connect("e", b, c); err != nil {
		t.Fatal(err)
	}
	if err := txn.UpdateAtom("n", a, []model.Value{model.Int(99)}); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Disconnect("e", a, b); err != nil {
		t.Fatal(err)
	}
	if err := txn.DeleteAtom("n", b); err != nil {
		t.Fatal(err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	after := snapshot(t, db)
	if !bytes.Equal(before, after) {
		t.Fatal("rollback did not restore the exact pre-transaction state")
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnDeleteCascadeRestoresLinks(t *testing.T) {
	db := txnDB(t)
	hub, _ := db.InsertAtom("n", model.Int(0))
	var spokes []model.AtomID
	for i := 0; i < 5; i++ {
		s, _ := db.InsertAtom("n", model.Int(int64(i+1)))
		spokes = append(spokes, s)
		if err := db.Connect("e", hub, s); err != nil {
			t.Fatal(err)
		}
	}
	// One incoming link too (hub on side B).
	if err := db.Connect("e", spokes[0], hub); err != nil {
		t.Fatal(err)
	}
	before := snapshot(t, db)
	txn := db.Begin()
	if err := txn.DeleteAtom("n", hub); err != nil {
		t.Fatal(err)
	}
	if db.TotalLinks() != 0 {
		t.Fatal("cascade incomplete")
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, snapshot(t, db)) {
		t.Fatal("cascaded links not restored")
	}
}

func TestTxnIdempotentConnectRollback(t *testing.T) {
	db := txnDB(t)
	a, _ := db.InsertAtom("n", model.Int(1))
	b, _ := db.InsertAtom("n", model.Int(2))
	if err := db.Connect("e", a, b); err != nil {
		t.Fatal(err)
	}
	txn := db.Begin()
	// Connecting an existing link is a no-op; rollback must NOT remove it.
	if err := txn.Connect("e", a, b); err != nil {
		t.Fatal(err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.CountLinks("e"); n != 1 {
		t.Fatal("rollback removed a pre-existing link")
	}
}

func TestTxnUseAfterFinish(t *testing.T) {
	db := txnDB(t)
	txn := db.Begin()
	txn.Commit()
	if _, err := txn.InsertAtom("n", model.Int(1)); err == nil {
		t.Fatal("insert after commit must fail")
	}
	if err := txn.Connect("e", 1, 2); err == nil {
		t.Fatal("connect after commit must fail")
	}
}

// TestTxnRollbackPropertyRandomOps drives random transactional mutation
// sequences and checks that rollback always restores the byte-exact
// pre-transaction snapshot.
func TestTxnRollbackPropertyRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := txnDB(t)
		// Seed state outside the transaction.
		var live []model.AtomID
		for i := 0; i < 8; i++ {
			id, err := db.InsertAtom("n", model.Int(int64(i)))
			if err != nil {
				return false
			}
			live = append(live, id)
		}
		for i := 0; i < 6; i++ {
			a := live[rng.Intn(len(live))]
			b := live[rng.Intn(len(live))]
			if a != b {
				if err := db.Connect("e", a, b); err != nil {
					return false
				}
			}
		}
		before := snapshot(t, db)
		txn := db.Begin()
		inTxn := append([]model.AtomID(nil), live...)
		for op := 0; op < 30; op++ {
			switch r := rng.Intn(10); {
			case r < 3:
				id, err := txn.InsertAtom("n", model.Int(int64(100+op)))
				if err != nil {
					return false
				}
				inTxn = append(inTxn, id)
			case r < 6 && len(inTxn) >= 2:
				a := inTxn[rng.Intn(len(inTxn))]
				b := inTxn[rng.Intn(len(inTxn))]
				if a == b {
					continue
				}
				if err := txn.Connect("e", a, b); err != nil {
					return false
				}
			case r < 7 && len(inTxn) >= 2:
				a := inTxn[rng.Intn(len(inTxn))]
				b := inTxn[rng.Intn(len(inTxn))]
				if _, err := txn.Disconnect("e", a, b); err != nil {
					return false
				}
			case r < 8 && len(inTxn) > 0:
				id := inTxn[rng.Intn(len(inTxn))]
				if err := txn.UpdateAtom("n", id, []model.Value{model.Int(int64(rng.Intn(1000)))}); err != nil {
					return false
				}
			default:
				if len(inTxn) == 0 {
					continue
				}
				i := rng.Intn(len(inTxn))
				if err := txn.DeleteAtom("n", inTxn[i]); err != nil {
					return false
				}
				inTxn = append(inTxn[:i], inTxn[i+1:]...)
			}
		}
		if err := txn.Rollback(); err != nil {
			return false
		}
		if db.CheckIntegrity() != nil {
			return false
		}
		return bytes.Equal(before, snapshot(t, db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
