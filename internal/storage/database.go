package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mad/internal/catalog"
	"mad/internal/model"
)

// Database is a MAD database DB = <AT, LT> (Definition 3): a schema plus
// the occurrences of every atom type and link type, guarded by one
// read-write mutex. All mutation goes through Database methods, which
// maintain referential integrity ("there are no dangling references"),
// link symmetry, cardinality restrictions, secondary indexes and the
// per-attribute histograms built by Analyze.
type Database struct {
	mu         sync.RWMutex
	schema     *catalog.Schema
	containers map[string]*Container
	links      map[string]*LinkStore
	indexes    map[string]*Index
	hists      map[string]*attrHist
	stats      Stats
	planEpoch  atomic.Uint64
	// autoAnalyzeFrac triggers a histogram rebuild once incremental drift
	// exceeds this fraction of an occurrence; <= 0 disables it.
	autoAnalyzeFrac float64
}

// NewDatabase returns an empty database with an empty schema.
func NewDatabase() *Database {
	return &Database{
		schema:          catalog.NewSchema(),
		containers:      make(map[string]*Container),
		links:           make(map[string]*LinkStore),
		indexes:         make(map[string]*Index),
		hists:           make(map[string]*attrHist),
		autoAnalyzeFrac: DefaultAutoAnalyzeFraction,
	}
}

// Schema exposes the catalog. Callers must treat it as read-only; all
// schema mutation goes through DefineAtomType / DefineLinkType so the
// occurrence side stays in step.
func (db *Database) Schema() *catalog.Schema {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.schema
}

// Stats returns the live statistics block.
func (db *Database) Stats() *Stats { return &db.stats }

// DefineAtomType declares an atom type and creates its (empty) container.
func (db *Database) DefineAtomType(name string, desc *model.Desc) (*catalog.AtomType, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	at, err := db.schema.AddAtomType(name, desc)
	if err != nil {
		return nil, err
	}
	db.containers[name] = NewContainer(name, at.Num, desc)
	db.bumpPlanEpoch()
	return at, nil
}

// DefineLinkType declares a link type and creates its (empty) store.
func (db *Database) DefineLinkType(name string, desc model.LinkDesc) (*catalog.LinkType, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	lt, err := db.schema.AddLinkType(name, desc)
	if err != nil {
		return nil, err
	}
	db.links[name] = NewLinkStore(name, desc)
	db.bumpPlanEpoch()
	return lt, nil
}

// containerByName resolves a container; callers hold db.mu.
func (db *Database) containerByName(name string) (*Container, bool) {
	c, ok := db.containers[name]
	return c, ok
}

// Container exposes the container of an atom type for read-mostly callers
// such as the algebra layers. The container is shared, not a copy.
func (db *Database) Container(name string) (*Container, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.containerByName(name)
}

// LinkStore exposes the store of a link type.
func (db *Database) LinkStore(name string) (*LinkStore, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ls, ok := db.links[name]
	return ls, ok
}

// InsertAtom validates and stores a new atom of the named type, returning
// its identifier.
func (db *Database) InsertAtom(typeName string, vals ...model.Value) (model.AtomID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.containerByName(typeName)
	if !ok {
		return 0, fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	id, err := c.Insert(vals)
	if err != nil {
		return 0, err
	}
	db.stats.AtomsInserted.Add(1)
	a, _ := c.Get(id)
	for _, ix := range db.indexesOf(typeName) {
		ix.Add(a)
	}
	db.histInsert(typeName, a)
	db.maybeAutoAnalyze(typeName)
	return id, nil
}

// AdoptAtom stores an atom under its existing identifier — used by
// propagation (Definition 9) and snapshot loading.
func (db *Database) AdoptAtom(typeName string, a model.Atom) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.containerByName(typeName)
	if !ok {
		return fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	if err := c.Adopt(a); err != nil {
		return err
	}
	db.stats.AtomsInserted.Add(1)
	stored, _ := c.Get(a.ID)
	for _, ix := range db.indexesOf(typeName) {
		ix.Add(stored)
	}
	db.histInsert(typeName, stored)
	db.maybeAutoAnalyze(typeName)
	return nil
}

// GetAtom fetches one atom of the named type.
func (db *Database) GetAtom(typeName string, id model.AtomID) (model.Atom, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.containerByName(typeName)
	if !ok {
		return model.Atom{}, false
	}
	a, ok := c.Get(id)
	if ok {
		db.stats.AtomsFetched.Add(1)
	}
	return a, ok
}

// HasAtom reports whether the named type's occurrence contains id.
func (db *Database) HasAtom(typeName string, id model.AtomID) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.containerByName(typeName)
	return ok && c.Has(id)
}

// ResolveAtom finds the atom by identifier in its *native* type — the atom
// type whose number the identifier embeds. It returns the atom and the
// type name.
func (db *Database) ResolveAtom(id model.AtomID) (model.Atom, string, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	at, ok := db.schema.AtomTypeByNum(id.TypeNum())
	if !ok {
		return model.Atom{}, "", false
	}
	c, ok := db.containerByName(at.Name)
	if !ok {
		return model.Atom{}, "", false
	}
	a, ok := c.Get(id)
	if ok {
		db.stats.AtomsFetched.Add(1)
	}
	return a, at.Name, ok
}

// UpdateAtom replaces the attribute values of an existing atom, keeping
// secondary indexes in step.
func (db *Database) UpdateAtom(typeName string, id model.AtomID, vals []model.Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.containerByName(typeName)
	if !ok {
		return fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	old, ok := c.Get(id)
	if !ok {
		return fmt.Errorf("storage: atom %v not in %q", id, typeName)
	}
	if err := c.Update(id, vals); err != nil {
		return err
	}
	updated, _ := c.Get(id)
	for _, ix := range db.indexesOf(typeName) {
		ix.remove(old)
		ix.Add(updated)
	}
	db.histDelete(typeName, old)
	db.histInsert(typeName, updated)
	db.maybeAutoAnalyze(typeName)
	return nil
}

// DeleteAtom removes an atom from the named type's occurrence and drops
// every link incident to it in link types mentioning that type, so no
// dangling links remain. It returns the number of links dropped.
func (db *Database) DeleteAtom(typeName string, id model.AtomID) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.containerByName(typeName)
	if !ok {
		return 0, fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	a, ok := c.Get(id)
	if !ok {
		return 0, fmt.Errorf("storage: atom %v not in %q", id, typeName)
	}
	for _, ix := range db.indexesOf(typeName) {
		ix.remove(a)
	}
	db.histDelete(typeName, a)
	dropped := 0
	for _, lt := range db.schema.LinkTypesOf(typeName) {
		if ls, ok := db.links[lt.Name]; ok {
			if n := ls.DropAtom(id); n > 0 {
				dropped += n
				db.maybeLinkEpochBump(ls)
			}
		}
	}
	c.Delete(id)
	db.stats.AtomsDeleted.Add(1)
	db.stats.LinksDropped.Add(int64(dropped))
	db.maybeAutoAnalyze(typeName)
	return dropped, nil
}

// Connect inserts a link of the named type between atom a (side A) and
// atom b (side B). Both endpoints must exist in their side's occurrence;
// cardinality restrictions are enforced.
func (db *Database) Connect(linkName string, a, b model.AtomID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	ls, ok := db.links[linkName]
	if !ok {
		return fmt.Errorf("storage: unknown link type %q", linkName)
	}
	ca, ok := db.containerByName(ls.desc.SideA)
	if !ok || !ca.Has(a) {
		return fmt.Errorf("storage: link %q: atom %v not in %q", linkName, a, ls.desc.SideA)
	}
	cb, ok := db.containerByName(ls.desc.SideB)
	if !ok || !cb.Has(b) {
		return fmt.Errorf("storage: link %q: atom %v not in %q", linkName, b, ls.desc.SideB)
	}
	if err := ls.Connect(a, b); err != nil {
		return err
	}
	db.stats.LinksConnected.Add(1)
	db.maybeLinkEpochBump(ls)
	return nil
}

// Disconnect removes a link; it reports whether the link existed.
func (db *Database) Disconnect(linkName string, a, b model.AtomID) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	ls, ok := db.links[linkName]
	if !ok {
		return false, fmt.Errorf("storage: unknown link type %q", linkName)
	}
	removed := ls.Disconnect(a, b)
	if removed {
		db.stats.LinksDropped.Add(1)
		db.maybeLinkEpochBump(ls)
	}
	return removed, nil
}

// Partners returns the atoms linked to id through the named link type,
// traversing from side A when fromSideA is true, from side B otherwise —
// the symmetric navigation underlying molecule derivation. The returned
// slice is shared; callers must not mutate it.
func (db *Database) Partners(linkName string, id model.AtomID, fromSideA bool) ([]model.AtomID, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ls, ok := db.links[linkName]
	if !ok {
		return nil, fmt.Errorf("storage: unknown link type %q", linkName)
	}
	var out []model.AtomID
	if fromSideA {
		out = ls.PartnersFromA(id)
	} else {
		out = ls.PartnersFromB(id)
	}
	db.stats.LinksTraversed.Add(int64(len(out)) + 1)
	return out, nil
}

// ScanAtoms iterates the named type's occurrence in insertion order.
func (db *Database) ScanAtoms(typeName string, fn func(model.Atom) bool) error {
	db.mu.RLock()
	c, ok := db.containerByName(typeName)
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	n := int64(0)
	c.Scan(func(a model.Atom) bool {
		n++
		return fn(a)
	})
	db.stats.AtomsFetched.Add(n)
	return nil
}

// CountAtoms returns the occurrence size of the named atom type.
func (db *Database) CountAtoms(typeName string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.containerByName(typeName)
	if !ok {
		return 0, fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	return c.Len(), nil
}

// CountLinks returns the occurrence size of the named link type.
func (db *Database) CountLinks(linkName string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ls, ok := db.links[linkName]
	if !ok {
		return 0, fmt.Errorf("storage: unknown link type %q", linkName)
	}
	return ls.Len(), nil
}

// TotalAtoms returns the number of atoms across all atom types.
func (db *Database) TotalAtoms() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, c := range db.containers {
		n += c.Len()
	}
	return n
}

// TotalLinks returns the number of links across all link types.
func (db *Database) TotalLinks() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, ls := range db.links {
		n += ls.Len()
	}
	return n
}

// CheckIntegrity verifies the invariants the model guarantees: every link
// endpoint exists in its side's occurrence, the two adjacency directions
// mirror each other, and cardinality restrictions hold. It returns the
// first violation found, or nil.
func (db *Database) CheckIntegrity() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, lt := range db.schema.LinkTypes() {
		ls := db.links[lt.Name]
		if ls == nil {
			return fmt.Errorf("storage: link type %q has no store", lt.Name)
		}
		ca, ok := db.containerByName(lt.Desc.SideA)
		if !ok {
			return fmt.Errorf("storage: link type %q: side %q has no container", lt.Name, lt.Desc.SideA)
		}
		cb, ok := db.containerByName(lt.Desc.SideB)
		if !ok {
			return fmt.Errorf("storage: link type %q: side %q has no container", lt.Name, lt.Desc.SideB)
		}
		var err error
		ls.Scan(func(l model.Link) bool {
			if !ca.Has(l.A) {
				err = fmt.Errorf("storage: dangling link %v in %q: %v not in %q", l, lt.Name, l.A, lt.Desc.SideA)
				return false
			}
			if !cb.Has(l.B) {
				err = fmt.Errorf("storage: dangling link %v in %q: %v not in %q", l, lt.Name, l.B, lt.Desc.SideB)
				return false
			}
			if !containsID(ls.PartnersFromB(l.B), l.A) {
				err = fmt.Errorf("storage: asymmetric link %v in %q", l, lt.Name)
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		for a, partners := range ls.fromA {
			if !lt.Desc.CardA.Allows(len(partners)) && len(partners) > 0 {
				return fmt.Errorf("storage: %q: atom %v violates cardinality %s", lt.Name, a, lt.Desc.CardA)
			}
		}
		for b, partners := range ls.fromB {
			if !lt.Desc.CardB.Allows(len(partners)) && len(partners) > 0 {
				return fmt.Errorf("storage: %q: atom %v violates cardinality %s", lt.Name, b, lt.Desc.CardB)
			}
		}
	}
	return nil
}
