package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mad/internal/catalog"
	"mad/internal/model"
)

// Database is a MAD database DB = <AT, LT> (Definition 3): a schema plus
// the occurrences of every atom type and link type. Since the MVCC
// refactor the single stop-the-world mutex is gone: every occurrence is a
// set of version chains stamped with commit timestamps, readers resolve
// chains against either the published clock (latest view) or a pinned
// Snapshot and never block behind writers, and writers serialize on a
// dedicated commit mutex whose critical section is just "apply the
// buffered operations, advance the clock". All mutation goes through
// Database methods (auto-commits) or a buffered Txn, which maintain
// referential integrity ("there are no dangling references"), link
// symmetry, cardinality restrictions, secondary indexes and the
// per-attribute histograms built by Analyze.
//
// Lock order, outermost first: commitMu → mu → per-occurrence latches.
// snapMu is a leaf lock guarding only the live-snapshot registry.
type Database struct {
	// mu guards the registries (schema, containers, links, indexes,
	// hists) — not the occurrence contents, which carry their own latch.
	mu         sync.RWMutex
	schema     *catalog.Schema
	containers map[string]*Container
	links      map[string]*LinkStore
	indexes    map[string]*Index
	hists      map[string]*attrHist

	// commitMu serializes writers: one commit installs and publishes at a
	// time. Readers never take it.
	commitMu sync.Mutex
	// latestTS is the published commit timestamp — the version every
	// legacy (timestamp-less) read method serves. It starts at 1 so 0 can
	// mean "unpinned" elsewhere; the first commit publishes 2.
	latestTS atomic.Uint64
	// lastAlloc is the allocation clock: the newest timestamp any commit
	// has applied versions at, published or not. With a WAL attached it
	// runs ahead of latestTS while commits await their fsync; without one
	// the two advance in lockstep. Guarded by commitMu.
	lastAlloc uint64

	// wal and dir are set by Open for a durable database; both zero for a
	// purely in-memory one. wal is written once before the database is
	// shared, then read-only.
	wal *WAL
	dir string

	// ckptMu serializes checkpoints; ckptHooks run after each successful
	// one (feedback persistence hangs off this). ckptTestHook, when set,
	// runs while the checkpoint holds its snapshot pin — the
	// vacuum-interaction tests inject through it.
	ckptMu       sync.Mutex
	ckptHooks    []func() error
	ckptTestHook func()
	// autoCkpts counts checkpoints completed by the auto-checkpoint
	// trigger (SetAutoCheckpoint), for observability and tests.
	autoCkpts atomic.Int64

	// snapMu guards liveSnaps, the refcounts of pinned snapshot
	// timestamps that hold the vacuum horizon back.
	snapMu    sync.Mutex
	liveSnaps map[uint64]int

	stats     Stats
	planEpoch atomic.Uint64
	// autoAnalyzeFrac triggers a histogram rebuild once incremental drift
	// exceeds this fraction of an occurrence; <= 0 disables it.
	autoAnalyzeFrac float64
}

// NewDatabase returns an empty database with an empty schema.
func NewDatabase() *Database {
	db := &Database{
		schema:          catalog.NewSchema(),
		containers:      make(map[string]*Container),
		links:           make(map[string]*LinkStore),
		indexes:         make(map[string]*Index),
		hists:           make(map[string]*attrHist),
		liveSnaps:       make(map[uint64]int),
		autoAnalyzeFrac: DefaultAutoAnalyzeFraction,
	}
	db.latestTS.Store(1)
	db.lastAlloc = 1
	return db
}

// LatestTS returns the published commit timestamp — the version the
// latest view reads. A Snapshot pins one of these values.
func (db *Database) LatestTS() uint64 { return db.latestTS.Load() }

// OnCheckpoint registers fn to run after every successful Checkpoint,
// while the checkpoint lock is still held. The mad facade hooks feedback
// persistence here so planner observations land beside the snapshot.
func (db *Database) OnCheckpoint(fn func() error) {
	db.ckptMu.Lock()
	db.ckptHooks = append(db.ckptHooks, fn)
	db.ckptMu.Unlock()
}

// walGate returns the log's sticky failure, if any, so commit paths
// refuse to apply once durability is gone. Callers hold commitMu.
func (db *Database) walGate() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.healthy()
}

// publishUpTo advances the published clock to ts unless it already
// passed it — the WAL flusher's publication step after a batch's fsync.
func (db *Database) publishUpTo(ts uint64) {
	for {
		cur := db.latestTS.Load()
		if cur >= ts || db.latestTS.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// sealCommit finishes one commit whose versions are applied at ts: it
// advances the allocation clock and either publishes immediately (no
// WAL) or hands the framed record to the flusher and blocks until the
// fsync acknowledgement. In every path it RELEASES commitMu — callers
// must not unlock it themselves, and post-commit bookkeeping (stats,
// histograms, epoch bumps) runs outside the critical section. On error
// the applied versions stay permanently invisible: the published clock
// never reaches them, and the gate rejects all further commits.
func (db *Database) sealCommit(ts uint64, ops []walOp) error {
	db.lastAlloc = ts
	if db.wal == nil {
		db.latestTS.Store(ts)
		db.commitMu.Unlock()
		return nil
	}
	rec, err := encodeWALRecord(ts, ops)
	if err != nil {
		db.wal.fail(err)
		db.commitMu.Unlock()
		return err
	}
	done, err := db.wal.enqueue(ts, rec)
	db.commitMu.Unlock()
	if err != nil {
		return err
	}
	return <-done
}

// Schema exposes the catalog. Callers must treat it as read-only; all
// schema mutation goes through DefineAtomType / DefineLinkType so the
// occurrence side stays in step.
func (db *Database) Schema() *catalog.Schema {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.schema
}

// Stats returns the live statistics block.
func (db *Database) Stats() *Stats { return &db.stats }

// DefineAtomType declares an atom type and creates its (empty) container.
// Schema definition is not versioned: the type exists for every snapshot,
// old snapshots simply see an empty occurrence. With a WAL attached the
// declaration is logged (and fsynced) like any commit.
func (db *Database) DefineAtomType(name string, desc *model.Desc) (*catalog.AtomType, error) {
	db.commitMu.Lock()
	if err := db.walGate(); err != nil {
		db.commitMu.Unlock()
		return nil, err
	}
	at, err := db.defineAtomType(name, desc)
	if err != nil {
		db.commitMu.Unlock()
		return nil, err
	}
	if db.wal == nil {
		db.commitMu.Unlock()
		return at, nil
	}
	ts := db.lastAlloc + 1
	op := walOp{kind: walOpAtomType, name: name, attrs: desc.Attrs()}
	if err := db.sealCommit(ts, []walOp{op}); err != nil {
		return nil, err
	}
	return at, nil
}

// defineAtomType is the registry half of DefineAtomType — shared with
// snapshot loading and WAL replay, which must not re-log.
func (db *Database) defineAtomType(name string, desc *model.Desc) (*catalog.AtomType, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	at, err := db.schema.AddAtomType(name, desc)
	if err != nil {
		return nil, err
	}
	c := NewContainer(name, at.Num, desc)
	c.bindClock(&db.latestTS)
	db.containers[name] = c
	db.bumpPlanEpoch()
	return at, nil
}

// DefineLinkType declares a link type and creates its (empty) store.
func (db *Database) DefineLinkType(name string, desc model.LinkDesc) (*catalog.LinkType, error) {
	db.commitMu.Lock()
	if err := db.walGate(); err != nil {
		db.commitMu.Unlock()
		return nil, err
	}
	lt, err := db.defineLinkType(name, desc)
	if err != nil {
		db.commitMu.Unlock()
		return nil, err
	}
	if db.wal == nil {
		db.commitMu.Unlock()
		return lt, nil
	}
	ts := db.lastAlloc + 1
	op := walOp{kind: walOpLinkType, name: name, link: desc}
	if err := db.sealCommit(ts, []walOp{op}); err != nil {
		return nil, err
	}
	return lt, nil
}

// defineLinkType is the registry half of DefineLinkType.
func (db *Database) defineLinkType(name string, desc model.LinkDesc) (*catalog.LinkType, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	lt, err := db.schema.AddLinkType(name, desc)
	if err != nil {
		return nil, err
	}
	ls := NewLinkStore(name, desc)
	ls.bindClock(&db.latestTS)
	db.links[name] = ls
	db.bumpPlanEpoch()
	return lt, nil
}

// containerByName resolves a container; callers hold db.mu.
func (db *Database) containerByName(name string) (*Container, bool) {
	c, ok := db.containers[name]
	return c, ok
}

// Container exposes the container of an atom type for read-mostly callers
// such as the algebra layers. The container is shared, not a copy; its
// timestamp-less methods serve the latest published commit, the *At
// variants a pinned snapshot.
func (db *Database) Container(name string) (*Container, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.containerByName(name)
}

// LinkStore exposes the store of a link type.
func (db *Database) LinkStore(name string) (*LinkStore, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ls, ok := db.links[name]
	return ls, ok
}

// InsertAtom validates and stores a new atom of the named type as one
// auto-commit, returning its identifier.
func (db *Database) InsertAtom(typeName string, vals ...model.Value) (model.AtomID, error) {
	db.commitMu.Lock()
	if err := db.walGate(); err != nil {
		db.commitMu.Unlock()
		return 0, err
	}
	db.mu.RLock()
	c, ok := db.containerByName(typeName)
	ixs := db.indexesOf(typeName)
	db.mu.RUnlock()
	if !ok {
		db.commitMu.Unlock()
		return 0, fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	id, err := c.allocID()
	if err != nil {
		db.commitMu.Unlock()
		return 0, err
	}
	a, err := c.validate(id, vals)
	if err != nil {
		db.commitMu.Unlock()
		return 0, err
	}
	ts := db.lastAlloc + 1
	c.applyPut(a, ts)
	for _, ix := range ixs {
		ix.applyAdd(a, ts)
	}
	if err := db.sealCommit(ts, []walOp{{kind: walOpPut, name: typeName, atom: a}}); err != nil {
		return 0, err
	}
	db.stats.AtomsInserted.Add(1)
	db.histInsert(typeName, a)
	db.maybeAutoAnalyze(typeName)
	return id, nil
}

// AdoptAtom stores an atom under its existing identifier — used by
// propagation (Definition 9) and snapshot loading.
func (db *Database) AdoptAtom(typeName string, a model.Atom) error {
	db.commitMu.Lock()
	if err := db.walGate(); err != nil {
		db.commitMu.Unlock()
		return err
	}
	db.mu.RLock()
	c, ok := db.containerByName(typeName)
	ixs := db.indexesOf(typeName)
	db.mu.RUnlock()
	if !ok {
		db.commitMu.Unlock()
		return fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	if !a.ID.Valid() {
		db.commitMu.Unlock()
		return fmt.Errorf("storage: cannot adopt atom with invalid id into %q", typeName)
	}
	stored, err := c.validate(a.ID, a.Vals)
	if err != nil {
		db.commitMu.Unlock()
		return err
	}
	ts := db.lastAlloc + 1
	if _, err := c.applyAdopt(stored, ts); err != nil {
		db.commitMu.Unlock()
		return err
	}
	for _, ix := range ixs {
		ix.applyAdd(stored, ts)
	}
	if err := db.sealCommit(ts, []walOp{{kind: walOpPut, name: typeName, atom: stored}}); err != nil {
		return err
	}
	db.stats.AtomsInserted.Add(1)
	db.histInsert(typeName, stored)
	db.maybeAutoAnalyze(typeName)
	return nil
}

// GetAtom fetches one atom of the named type at the latest commit.
func (db *Database) GetAtom(typeName string, id model.AtomID) (model.Atom, bool) {
	return db.GetAtomAt(typeName, id, db.latestTS.Load())
}

// GetAtomAt fetches one atom as of the given commit timestamp.
func (db *Database) GetAtomAt(typeName string, id model.AtomID, ts uint64) (model.Atom, bool) {
	db.mu.RLock()
	c, ok := db.containerByName(typeName)
	db.mu.RUnlock()
	if !ok {
		return model.Atom{}, false
	}
	a, ok := c.GetAt(id, ts)
	if ok {
		db.stats.AtomsFetched.Add(1)
	}
	return a, ok
}

// HasAtom reports whether the named type's occurrence contains id.
func (db *Database) HasAtom(typeName string, id model.AtomID) bool {
	db.mu.RLock()
	c, ok := db.containerByName(typeName)
	db.mu.RUnlock()
	return ok && c.Has(id)
}

// ResolveAtom finds the atom by identifier in its *native* type — the atom
// type whose number the identifier embeds. It returns the atom and the
// type name.
func (db *Database) ResolveAtom(id model.AtomID) (model.Atom, string, bool) {
	return db.ResolveAtomAt(id, db.latestTS.Load())
}

// ResolveAtomAt resolves the atom as of the given commit timestamp.
func (db *Database) ResolveAtomAt(id model.AtomID, ts uint64) (model.Atom, string, bool) {
	db.mu.RLock()
	at, ok := db.schema.AtomTypeByNum(id.TypeNum())
	if !ok {
		db.mu.RUnlock()
		return model.Atom{}, "", false
	}
	c, ok := db.containerByName(at.Name)
	db.mu.RUnlock()
	if !ok {
		return model.Atom{}, "", false
	}
	a, ok := c.GetAt(id, ts)
	if ok {
		db.stats.AtomsFetched.Add(1)
	}
	return a, at.Name, ok
}

// UpdateAtom replaces the attribute values of an existing atom as one
// auto-commit, keeping secondary indexes in step.
func (db *Database) UpdateAtom(typeName string, id model.AtomID, vals []model.Value) error {
	db.commitMu.Lock()
	if err := db.walGate(); err != nil {
		db.commitMu.Unlock()
		return err
	}
	db.mu.RLock()
	c, ok := db.containerByName(typeName)
	ixs := db.indexesOf(typeName)
	db.mu.RUnlock()
	if !ok {
		db.commitMu.Unlock()
		return fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	// Validation reads resolve at the candidate timestamp, not the
	// published clock: with a WAL attached, earlier commits may be applied
	// but still awaiting their fsync, and this commit is ordered after
	// them.
	ts := db.lastAlloc + 1
	old, ok := c.GetAt(id, ts)
	if !ok {
		db.commitMu.Unlock()
		return fmt.Errorf("storage: atom %v not in %q", id, typeName)
	}
	updated, err := c.validate(id, vals)
	if err != nil {
		db.commitMu.Unlock()
		return err
	}
	c.applyPut(updated, ts)
	for _, ix := range ixs {
		ix.applyRemove(old, ts)
		ix.applyAdd(updated, ts)
	}
	if err := db.sealCommit(ts, []walOp{{kind: walOpPut, name: typeName, atom: updated}}); err != nil {
		return err
	}
	db.histDelete(typeName, old)
	db.histInsert(typeName, updated)
	db.maybeAutoAnalyze(typeName)
	return nil
}

// DeleteAtom removes an atom from the named type's occurrence and drops
// every link incident to it in link types mentioning that type, so no
// dangling links remain — all as one atomic commit. It returns the number
// of links dropped.
func (db *Database) DeleteAtom(typeName string, id model.AtomID) (int, error) {
	db.commitMu.Lock()
	if err := db.walGate(); err != nil {
		db.commitMu.Unlock()
		return 0, err
	}
	db.mu.RLock()
	c, ok := db.containerByName(typeName)
	ixs := db.indexesOf(typeName)
	var stores []*LinkStore
	if ok {
		for _, lt := range db.schema.LinkTypesOf(typeName) {
			if ls, present := db.links[lt.Name]; present {
				stores = append(stores, ls)
			}
		}
	}
	db.mu.RUnlock()
	if !ok {
		db.commitMu.Unlock()
		return 0, fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	ts := db.lastAlloc + 1
	a, ok := c.GetAt(id, ts)
	if !ok {
		db.commitMu.Unlock()
		return 0, fmt.Errorf("storage: atom %v not in %q", id, typeName)
	}
	dropped := 0
	var bumped []*LinkStore
	for _, ls := range stores {
		if n, _ := ls.applyDropAtom(id, ts); n > 0 {
			dropped += n
			bumped = append(bumped, ls)
		}
	}
	if _, err := c.applyDelete(id, ts); err != nil {
		// Unreachable after the existence check above (commitMu excludes
		// concurrent writers), but keep the chain consistent regardless.
		db.commitMu.Unlock()
		return 0, err
	}
	for _, ix := range ixs {
		ix.applyRemove(a, ts)
	}
	// The log carries only the delete; replay recomputes the link cascade
	// through the same applyDropAtom path, so it cannot diverge.
	if err := db.sealCommit(ts, []walOp{{kind: walOpDelete, name: typeName, id: id}}); err != nil {
		return 0, err
	}
	db.stats.AtomsDeleted.Add(1)
	db.stats.LinksDropped.Add(int64(dropped))
	db.histDelete(typeName, a)
	for _, ls := range bumped {
		db.maybeLinkEpochBump(ls)
	}
	db.maybeAutoAnalyze(typeName)
	return dropped, nil
}

// Connect inserts a link of the named type between atom a (side A) and
// atom b (side B) as one auto-commit. Both endpoints must exist in their
// side's occurrence; cardinality restrictions are enforced.
func (db *Database) Connect(linkName string, a, b model.AtomID) error {
	db.commitMu.Lock()
	if err := db.walGate(); err != nil {
		db.commitMu.Unlock()
		return err
	}
	db.mu.RLock()
	ls, ok := db.links[linkName]
	var ca, cb *Container
	var okA, okB bool
	if ok {
		ca, okA = db.containerByName(ls.desc.SideA)
		cb, okB = db.containerByName(ls.desc.SideB)
	}
	db.mu.RUnlock()
	if !ok {
		db.commitMu.Unlock()
		return fmt.Errorf("storage: unknown link type %q", linkName)
	}
	ts := db.lastAlloc + 1
	if !okA || !ca.HasAt(a, ts) {
		db.commitMu.Unlock()
		return fmt.Errorf("storage: link %q: atom %v not in %q", linkName, a, ls.desc.SideA)
	}
	if !okB || !cb.HasAt(b, ts) {
		db.commitMu.Unlock()
		return fmt.Errorf("storage: link %q: atom %v not in %q", linkName, b, ls.desc.SideB)
	}
	undo, err := ls.applyConnect(a, b, ts)
	if err != nil {
		db.commitMu.Unlock()
		return err
	}
	if undo == nil {
		db.commitMu.Unlock()
		return nil // idempotent: the link already existed, nothing to publish
	}
	if err := db.sealCommit(ts, []walOp{{kind: walOpConnect, name: linkName, a: a, b: b}}); err != nil {
		return err
	}
	db.stats.LinksConnected.Add(1)
	db.maybeLinkEpochBump(ls)
	return nil
}

// Disconnect removes a link as one auto-commit; it reports whether the
// link existed.
func (db *Database) Disconnect(linkName string, a, b model.AtomID) (bool, error) {
	db.commitMu.Lock()
	if err := db.walGate(); err != nil {
		db.commitMu.Unlock()
		return false, err
	}
	db.mu.RLock()
	ls, ok := db.links[linkName]
	db.mu.RUnlock()
	if !ok {
		db.commitMu.Unlock()
		return false, fmt.Errorf("storage: unknown link type %q", linkName)
	}
	ts := db.lastAlloc + 1
	removed, _ := ls.applyDisconnect(a, b, ts)
	if !removed {
		db.commitMu.Unlock()
		return false, nil
	}
	if err := db.sealCommit(ts, []walOp{{kind: walOpDisconnect, name: linkName, a: a, b: b}}); err != nil {
		return false, err
	}
	db.stats.LinksDropped.Add(1)
	db.maybeLinkEpochBump(ls)
	return true, nil
}

// Partners returns the atoms linked to id through the named link type at
// the latest commit, traversing from side A when fromSideA is true, from
// side B otherwise — the symmetric navigation underlying molecule
// derivation. The returned slice is an immutable version; callers must
// not mutate it.
func (db *Database) Partners(linkName string, id model.AtomID, fromSideA bool) ([]model.AtomID, error) {
	return db.PartnersAt(linkName, id, fromSideA, db.latestTS.Load())
}

// PartnersAt returns the linked atoms as of the given commit timestamp.
func (db *Database) PartnersAt(linkName string, id model.AtomID, fromSideA bool, ts uint64) ([]model.AtomID, error) {
	db.mu.RLock()
	ls, ok := db.links[linkName]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: unknown link type %q", linkName)
	}
	var out []model.AtomID
	if fromSideA {
		out = ls.PartnersFromAAt(id, ts)
	} else {
		out = ls.PartnersFromBAt(id, ts)
	}
	db.stats.LinksTraversed.Add(int64(len(out)) + 1)
	return out, nil
}

// ScanAtoms iterates the named type's occurrence in insertion order at
// the latest commit.
func (db *Database) ScanAtoms(typeName string, fn func(model.Atom) bool) error {
	return db.ScanAtomsAt(typeName, db.latestTS.Load(), fn)
}

// ScanAtomsAt iterates the occurrence as of the given commit timestamp.
func (db *Database) ScanAtomsAt(typeName string, ts uint64, fn func(model.Atom) bool) error {
	db.mu.RLock()
	c, ok := db.containerByName(typeName)
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	n := int64(0)
	c.ScanAt(ts, func(a model.Atom) bool {
		n++
		return fn(a)
	})
	db.stats.AtomsFetched.Add(n)
	return nil
}

// CountAtoms returns the occurrence size of the named atom type.
func (db *Database) CountAtoms(typeName string) (int, error) {
	db.mu.RLock()
	c, ok := db.containerByName(typeName)
	db.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("storage: unknown atom type %q", typeName)
	}
	return c.Len(), nil
}

// CountLinks returns the occurrence size of the named link type.
func (db *Database) CountLinks(linkName string) (int, error) {
	db.mu.RLock()
	ls, ok := db.links[linkName]
	db.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("storage: unknown link type %q", linkName)
	}
	return ls.Len(), nil
}

// TotalAtoms returns the number of atoms across all atom types.
func (db *Database) TotalAtoms() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, c := range db.containers {
		n += c.Len()
	}
	return n
}

// TotalLinks returns the number of links across all link types.
func (db *Database) TotalLinks() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, ls := range db.links {
		n += ls.Len()
	}
	return n
}

// CheckIntegrity verifies the invariants the model guarantees: every link
// endpoint exists in its side's occurrence, the two adjacency directions
// mirror each other, and cardinality restrictions hold — all evaluated at
// the latest published commit. It returns the first violation found, or
// nil.
func (db *Database) CheckIntegrity() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ts := db.latestTS.Load()
	for _, lt := range db.schema.LinkTypes() {
		ls := db.links[lt.Name]
		if ls == nil {
			return fmt.Errorf("storage: link type %q has no store", lt.Name)
		}
		ca, ok := db.containerByName(lt.Desc.SideA)
		if !ok {
			return fmt.Errorf("storage: link type %q: side %q has no container", lt.Name, lt.Desc.SideA)
		}
		cb, ok := db.containerByName(lt.Desc.SideB)
		if !ok {
			return fmt.Errorf("storage: link type %q: side %q has no container", lt.Name, lt.Desc.SideB)
		}
		var err error
		degA := make(map[model.AtomID]int)
		degB := make(map[model.AtomID]int)
		ls.ScanAt(ts, func(l model.Link) bool {
			if !ca.HasAt(l.A, ts) {
				err = fmt.Errorf("storage: dangling link %v in %q: %v not in %q", l, lt.Name, l.A, lt.Desc.SideA)
				return false
			}
			if !cb.HasAt(l.B, ts) {
				err = fmt.Errorf("storage: dangling link %v in %q: %v not in %q", l, lt.Name, l.B, lt.Desc.SideB)
				return false
			}
			if !containsID(ls.PartnersFromBAt(l.B, ts), l.A) {
				err = fmt.Errorf("storage: asymmetric link %v in %q", l, lt.Name)
				return false
			}
			degA[l.A]++
			degB[l.B]++
			return true
		})
		if err != nil {
			return err
		}
		for a, n := range degA {
			if !lt.Desc.CardA.Allows(n) && n > 0 {
				return fmt.Errorf("storage: %q: atom %v violates cardinality %s", lt.Name, a, lt.Desc.CardA)
			}
		}
		for b, n := range degB {
			if !lt.Desc.CardB.Allows(n) && n > 0 {
				return fmt.Errorf("storage: %q: atom %v violates cardinality %s", lt.Name, b, lt.Desc.CardB)
			}
		}
	}
	return nil
}
