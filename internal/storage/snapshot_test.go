package storage_test

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mad/internal/model"
	"mad/internal/storage"
)

func TestSnapshotSeesFrozenState(t *testing.T) {
	db := txnDB(t)
	var ids []model.AtomID
	for i := 0; i < 4; i++ {
		id, _ := db.InsertAtom("n", model.Int(int64(i)))
		ids = append(ids, id)
	}
	db.Connect("e", ids[0], ids[1])
	snap := db.Snapshot()
	defer snap.Close()

	// Mutate heavily after the snapshot.
	db.DeleteAtom("n", ids[0])
	db.UpdateAtom("n", ids[1], []model.Value{model.Int(99)})
	extra, _ := db.InsertAtom("n", model.Int(5))
	db.Connect("e", ids[2], extra)

	if n, _ := snap.CountAtoms("n"); n != 4 {
		t.Fatalf("snapshot atoms = %d, want 4", n)
	}
	if n, _ := snap.CountLinks("e"); n != 1 {
		t.Fatalf("snapshot links = %d, want 1", n)
	}
	if a, ok := snap.GetAtom("n", ids[1]); !ok || a.Get(0).String() != "1" {
		t.Fatalf("snapshot atom value = %v", a)
	}
	ps, err := snap.Partners("e", ids[0], true)
	if err != nil || len(ps) != 1 || ps[0] != ids[1] {
		t.Fatalf("snapshot partners = %v, %v", ps, err)
	}
	// Latest view moved on.
	if db.HasAtom("n", ids[0]) {
		t.Fatal("latest view still has the deleted atom")
	}
	if n, _ := db.CountAtoms("n"); n != 4 {
		t.Fatalf("latest atoms = %d, want 4", n)
	}
}

// TestVacuumPropertyLiveSnapshotSafe is the snapshot/GC property test:
// run random mutation/snapshot/vacuum interleavings and verify that (a)
// vacuum never reclaims a version still reachable by a live snapshot —
// every pinned snapshot keeps answering with the exact counts captured
// when it was taken — and (b) closing the last snapshot releases its
// versions: a final vacuum collapses the chains back to near head-state.
func TestVacuumPropertyLiveSnapshotSafe(t *testing.T) {
	type pinned struct {
		snap  *storage.Snapshot
		atoms int
		links int
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := txnDB(t)
		var live []model.AtomID
		var pins []pinned
		ok := true
		for step := 0; step < 120 && ok; step++ {
			switch r := rng.Intn(12); {
			case r < 4: // insert
				id, err := db.InsertAtom("n", model.Int(int64(step)))
				if err != nil {
					return false
				}
				live = append(live, id)
			case r < 6 && len(live) >= 2: // connect
				a := live[rng.Intn(len(live))]
				b := live[rng.Intn(len(live))]
				if a != b {
					if err := db.Connect("e", a, b); err != nil {
						return false
					}
				}
			case r < 7 && len(live) > 0: // update
				id := live[rng.Intn(len(live))]
				if err := db.UpdateAtom("n", id, []model.Value{model.Int(int64(rng.Intn(50)))}); err != nil {
					return false
				}
			case r < 8 && len(live) > 0: // delete (cascades links)
				i := rng.Intn(len(live))
				if _, err := db.DeleteAtom("n", live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			case r < 10: // pin a snapshot
				s := db.Snapshot()
				na, _ := s.CountAtoms("n")
				nl, _ := s.CountLinks("e")
				pins = append(pins, pinned{s, na, nl})
			case r < 11 && len(pins) > 0: // release a random snapshot
				i := rng.Intn(len(pins))
				pins[i].snap.Close()
				pins = append(pins[:i], pins[i+1:]...)
			default: // vacuum under load
				db.Vacuum()
			}
			// Every live snapshot must still answer exactly as frozen.
			for _, p := range pins {
				na, _ := p.snap.CountAtoms("n")
				nl, _ := p.snap.CountLinks("e")
				if na != p.atoms || nl != p.links {
					ok = false
					break
				}
			}
		}
		for _, p := range pins {
			p.snap.Close()
		}
		if !ok {
			return false
		}
		// (b) With no pins left, vacuum must release everything the
		// snapshots were holding: one version per surviving slot, and no
		// further vacuum can reclaim more (fixpoint).
		db.Vacuum()
		if db.LiveSnapshots() != 0 {
			return false
		}
		if got := db.Vacuum().Reclaimed; got != 0 {
			return false
		}
		return db.CheckIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestVacuumReleasesVersionsAfterLastSnapshot leak-checks the metric the
// ISSUE names: dropping the last cursor's snapshot lets vacuum shrink
// VersionCount back to the head-only baseline.
func TestVacuumReleasesVersionsAfterLastSnapshot(t *testing.T) {
	db := txnDB(t)
	id, _ := db.InsertAtom("n", model.Int(0))
	snap := db.Snapshot()
	for i := 0; i < 20; i++ {
		if err := db.UpdateAtom("n", id, []model.Value{model.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	grown := db.VersionCount()
	if grown < 20 {
		t.Fatalf("version chain did not grow: %d", grown)
	}
	// Vacuum with the snapshot live must keep its version reachable.
	db.Vacuum()
	if a, ok := snap.GetAtom("n", id); !ok || a.Get(0).String() != "0" {
		t.Fatalf("vacuum reclaimed a version a live snapshot needs: %v %v", a, ok)
	}
	held := db.VersionCount()
	// The chain from the pinned version to head must survive; everything
	// cannot collapse to 1 yet.
	if held < 2 {
		t.Fatalf("vacuum over-reclaimed under a live snapshot: %d versions", held)
	}
	snap.Close()
	db.Vacuum()
	if got := db.VersionCount(); got != 1 {
		t.Fatalf("last snapshot closed but %d versions remain, want 1", got)
	}
	if a, _ := db.GetAtom("n", id); a.Get(0).String() != "19" {
		t.Fatalf("head damaged by vacuum: %v", a)
	}
}

func TestStartVacuumBackground(t *testing.T) {
	db := txnDB(t)
	id, _ := db.InsertAtom("n", model.Int(0))
	stop := db.StartVacuum(time.Millisecond)
	for i := 0; i < 50; i++ {
		if err := db.UpdateAtom("n", id, []model.Value{model.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		db.Vacuum()
		return db.VersionCount() == 1
	})
	stop()
	stop() // idempotent
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotCloseIdempotentRefcount(t *testing.T) {
	db := txnDB(t)
	s1 := db.Snapshot()
	s2 := db.Snapshot() // same ts, refcounted
	if db.LiveSnapshots() != 2 {
		t.Fatalf("live snapshots = %d", db.LiveSnapshots())
	}
	s1.Close()
	s1.Close() // double close must not release s2's pin
	if db.LiveSnapshots() != 1 {
		t.Fatalf("double close broke refcount: %d", db.LiveSnapshots())
	}
	s2.Close()
	if db.LiveSnapshots() != 0 {
		t.Fatalf("live snapshots = %d after closing all", db.LiveSnapshots())
	}
}

func TestVacuumDropsTombstonedSlots(t *testing.T) {
	db := txnDB(t)
	a, _ := db.InsertAtom("n", model.Int(1))
	b, _ := db.InsertAtom("n", model.Int(2))
	if err := db.Connect("e", a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DeleteAtom("n", a); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DeleteAtom("n", b); err != nil {
		t.Fatal(err)
	}
	db.Vacuum()
	if got := db.VersionCount(); got != 0 {
		t.Fatalf("tombstoned slots not reclaimed: %d versions", got)
	}
	if db.TotalAtoms() != 0 || db.TotalLinks() != 0 {
		t.Fatal("logical state wrong after vacuum")
	}
}

// TestVacuumHorizonCappedAtLatest pins the horizon arithmetic: with a
// snapshot live the horizon is its (oldest) timestamp even after later
// commits move latestTS past it; with no pins it is the latest commit.
func TestVacuumHorizonCappedAtLatest(t *testing.T) {
	db := txnDB(t)
	db.InsertAtom("n", model.Int(1))
	snap := db.Snapshot()
	if h := db.VacuumHorizon(); h != snap.TS() {
		t.Fatalf("horizon = %d, want pinned ts %d", h, snap.TS())
	}
	db.InsertAtom("n", model.Int(2))
	if h := db.VacuumHorizon(); h != snap.TS() {
		t.Fatalf("horizon moved past a live snapshot: %d > pin %d", h, snap.TS())
	}
	snap.Close()
	if h := db.VacuumHorizon(); h != db.LatestTS() {
		t.Fatalf("horizon = %d with no pins, want latest %d", h, db.LatestTS())
	}
}

// TestVacuumHorizonRaceSnapshotOpen is the TOCTOU regression test for
// VacuumHorizon: it hammers Snapshot-open against committing writers and
// a continuous vacuum loop. Because the horizon loads latestTS before
// consulting the pin registry (and returns the minimum), a snapshot
// pinned in the window between the two loads can never have its versions
// reclaimed — every fresh snapshot must answer with one stable count for
// its whole lifetime.
func TestVacuumHorizonRaceSnapshotOpen(t *testing.T) {
	db := txnDB(t)
	a, _ := db.InsertAtom("n", model.Int(0))
	b, _ := db.InsertAtom("n", model.Int(0))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer: each commit moves both atoms to the same value
		defer wg.Done()
		for k := int64(1); ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			txn := db.Begin()
			if err := txn.UpdateAtom("n", a, []model.Value{model.Int(k)}); err != nil {
				t.Error(err)
				return
			}
			if err := txn.UpdateAtom("n", b, []model.Value{model.Int(k)}); err != nil {
				t.Error(err)
				return
			}
			if err := txn.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // vacuum with no ticker delay, maximizing the window
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			db.Vacuum()
			runtime.Gosched()
		}
	}()
	for i := 0; i < 3000; i++ {
		snap := db.Snapshot()
		av, aok := snap.GetAtom("n", a)
		bv, bok := snap.GetAtom("n", b)
		ts := snap.TS()
		snap.Close()
		if !aok || !bok {
			t.Fatalf("snapshot at ts %d lost an atom (vacuum reclaimed a pinned version): a=%v b=%v", ts, aok, bok)
		}
		if av.Get(0).String() != bv.Get(0).String() {
			t.Fatalf("torn snapshot at ts %d: a=%v b=%v", ts, av.Get(0), bv.Get(0))
		}
	}
	close(stop)
	wg.Wait()
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond with a bounded number of short sleeps.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 500; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}
