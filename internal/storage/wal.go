package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"mad/internal/model"
)

// The write-ahead log makes commits durable before they become visible:
// every commit appends one length-prefixed, CRC-checksummed record of its
// logical write set (atom puts, tombstones, link deltas, DDL) stamped
// with the commit timestamp, and latestTS publishes only after an fsync
// covers the record. Group commit is the throughput lever: committers
// enqueue their framed record and block, a single flusher goroutine
// drains the queue, writes the whole batch, issues ONE fsync, publishes
// the batch's highest timestamp and acks every waiter — N concurrent
// writers cost ~1 fsync instead of N.
//
// The log is segmented (wal-<n>.log). Checkpoint rotates to a fresh
// segment through the same queue (a barrier request), so every record at
// or below the checkpoint timestamp lives in closed segments that can be
// deleted once the checkpoint file is durable.

// walFile is the byte sink one log segment writes through. *os.File
// satisfies it; the crash-injection harness substitutes an implementation
// that fails, short-writes or "crashes" at the Nth write or fsync.
type walFile interface {
	io.Writer
	Sync() error
	Close() error
}

// walOpenFunc opens (creating, append-only) one segment file.
type walOpenFunc func(path string) (walFile, error)

// osOpenWAL is the production walOpenFunc.
func osOpenWAL(path string) (walFile, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// errWALClosed rejects commits after Database.Close.
var errWALClosed = errors.New("storage: wal closed")

// walOp kinds — the logical redo operations a record carries. Replay
// applies them through the same apply paths commits use, so cascades
// (link drops on atom deletion) are recomputed rather than logged.
const (
	walOpPut uint8 = iota + 1
	walOpDelete
	walOpConnect
	walOpDisconnect
	walOpAtomType
	walOpLinkType
	walOpCreateIndex
	walOpDropIndex
)

// walOp is one logical operation of a commit's write set.
type walOp struct {
	kind  uint8
	name  string // atom-type, link-type or index target name
	atom  model.Atom
	id    model.AtomID
	a, b  model.AtomID
	attrs []model.AttrDesc
	link  model.LinkDesc
	attr  string
}

// walRecHeader is the frame prefix: u32 payload length + u32 CRC32(payload).
const walRecHeader = 8

// maxWALRecord bounds a decoded record so a corrupt length prefix cannot
// allocate unbounded memory.
const maxWALRecord = 1 << 30

// encodeWALRecord frames one commit's write set: header plus a payload of
// commit timestamp, op count and ops.
func encodeWALRecord(ts uint64, ops []walOp) ([]byte, error) {
	var payload bytes.Buffer
	w := newSnapWriter(&payload)
	w.u64(ts)
	w.uvarint(uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		w.u8(op.kind)
		w.str(op.name)
		switch op.kind {
		case walOpPut:
			w.u64(uint64(op.atom.ID))
			w.uvarint(uint64(len(op.atom.Vals)))
			for _, v := range op.atom.Vals {
				encodeValue(w, v)
			}
		case walOpDelete:
			w.u64(uint64(op.id))
		case walOpConnect, walOpDisconnect:
			w.u64(uint64(op.a))
			w.u64(uint64(op.b))
		case walOpAtomType:
			w.uvarint(uint64(len(op.attrs)))
			for _, ad := range op.attrs {
				w.str(ad.Name)
				w.u8(uint8(ad.Kind))
				w.boolean(ad.NotNull)
			}
		case walOpLinkType:
			w.str(op.link.SideA)
			w.str(op.link.SideB)
			w.uvarint(uint64(op.link.CardA.Min))
			w.uvarint(uint64(op.link.CardA.Max))
			w.uvarint(uint64(op.link.CardB.Min))
			w.uvarint(uint64(op.link.CardB.Max))
		case walOpCreateIndex, walOpDropIndex:
			w.str(op.attr)
		default:
			return nil, fmt.Errorf("storage: unknown wal op kind %d", op.kind)
		}
	}
	if err := w.flush(); err != nil {
		return nil, err
	}
	body := payload.Bytes()
	rec := make([]byte, walRecHeader+len(body))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(body))
	copy(rec[walRecHeader:], body)
	return rec, nil
}

// decodeWALPayload parses a checksum-verified record payload.
func decodeWALPayload(body []byte) (ts uint64, ops []walOp, err error) {
	r := newSnapReader(bytes.NewReader(body))
	ts = r.u64()
	n := r.uvarint()
	if r.err != nil {
		return 0, nil, r.err
	}
	for i := uint64(0); i < n; i++ {
		var op walOp
		op.kind = r.u8()
		op.name = r.str()
		switch op.kind {
		case walOpPut:
			id := model.AtomID(r.u64())
			nv := r.uvarint()
			if r.err != nil {
				return 0, nil, r.err
			}
			vals := make([]model.Value, 0, nv)
			for j := uint64(0); j < nv; j++ {
				v, err := decodeValue(r)
				if err != nil {
					return 0, nil, err
				}
				vals = append(vals, v)
			}
			op.atom = model.NewAtom(id, vals...)
		case walOpDelete:
			op.id = model.AtomID(r.u64())
		case walOpConnect, walOpDisconnect:
			op.a = model.AtomID(r.u64())
			op.b = model.AtomID(r.u64())
		case walOpAtomType:
			na := r.uvarint()
			if r.err != nil {
				return 0, nil, r.err
			}
			for j := uint64(0); j < na; j++ {
				op.attrs = append(op.attrs, model.AttrDesc{
					Name:    r.str(),
					Kind:    model.Kind(r.u8()),
					NotNull: r.boolean(),
				})
			}
		case walOpLinkType:
			op.link = model.LinkDesc{SideA: r.str(), SideB: r.str()}
			op.link.CardA = model.Cardinality{Min: int(r.uvarint()), Max: int(r.uvarint())}
			op.link.CardB = model.Cardinality{Min: int(r.uvarint()), Max: int(r.uvarint())}
		case walOpCreateIndex, walOpDropIndex:
			op.attr = r.str()
		default:
			return 0, nil, fmt.Errorf("storage: unknown wal op kind %d", op.kind)
		}
		if r.err != nil {
			return 0, nil, r.err
		}
		ops = append(ops, op)
	}
	return ts, ops, r.err
}

// walSegName names segment files so lexicographic order is replay order.
func walSegName(seg uint64) string {
	return fmt.Sprintf("wal-%016d.log", seg)
}

// parseWALSegName extracts the segment number, ok=false for other files.
func parseWALSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listWALSegments returns the directory's segment numbers ascending.
func listWALSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range entries {
		if seg, ok := parseWALSegName(e.Name()); ok {
			segs = append(segs, seg)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// readWALSegment streams one segment's records through fn, stopping at
// the first torn frame: a truncated header, truncated payload or CRC
// mismatch. tornAt is the byte offset of that frame (== the segment size
// for a clean read) — recovery truncates there before appending again.
// fn errors abort the read (a real error, not a torn tail).
func readWALSegment(path string, fn func(ts uint64, ops []walOp) error) (tornAt int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var off int64
	var head [walRecHeader]byte
	for {
		if _, err := io.ReadFull(r, head[:]); err != nil {
			if err == io.EOF {
				return off, false, nil // clean end
			}
			return off, true, nil // torn header
		}
		size := binary.LittleEndian.Uint32(head[0:4])
		sum := binary.LittleEndian.Uint32(head[4:8])
		if size > maxWALRecord {
			return off, true, nil
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(r, body); err != nil {
			return off, true, nil // torn payload
		}
		if crc32.ChecksumIEEE(body) != sum {
			return off, true, nil // checksum failure
		}
		ts, ops, err := decodeWALPayload(body)
		if err != nil {
			return off, true, nil // frame intact but payload garbage
		}
		if err := fn(ts, ops); err != nil {
			return off, false, err
		}
		off += walRecHeader + int64(size)
	}
}

// walReq is one queued flusher request: a framed commit record, or a
// rotation barrier (rec nil) that closes the current segment.
type walReq struct {
	ts     uint64
	rec    []byte
	rotate bool
	done   chan error
}

// WAL is the database's write-ahead log: an append-only segmented log
// with a single flusher goroutine providing group commit.
type WAL struct {
	dir     string
	open    walOpenFunc
	publish func(ts uint64)
	// perCommitSync degrades group commit to one fsync per record — the
	// "naive" baseline the P14 benchmark contrasts against.
	perCommitSync bool

	mu     sync.Mutex
	queue  []*walReq
	failed error
	signal chan struct{}
	stop   chan struct{}
	wg     sync.WaitGroup

	f   walFile
	seg atomic.Uint64

	// Observability counters: records appended, fsyncs issued. The
	// group-commit tests assert syncs ≪ appends under concurrency.
	appends atomic.Int64
	syncs   atomic.Int64

	// Auto-checkpoint: liveBytes counts record bytes appended since the
	// last rotation (the live, not-yet-checkpointed log). When ckptLimit
	// is positive and liveBytes crosses it, onCkpt fires exactly once —
	// ckptArmed latches until the checkpoint completes, so a long
	// checkpoint under continued write load cannot stack a second one.
	liveBytes atomic.Int64
	ckptLimit atomic.Int64
	ckptArmed atomic.Bool
	onCkpt    func() // guarded by mu
}

// newWAL opens a fresh segment numbered seg and starts the flusher.
func newWAL(dir string, seg uint64, publish func(uint64), open walOpenFunc, perCommitSync bool) (*WAL, error) {
	w := &WAL{
		dir:           dir,
		open:          open,
		publish:       publish,
		perCommitSync: perCommitSync,
		signal:        make(chan struct{}, 1),
		stop:          make(chan struct{}),
	}
	f, err := open(filepath.Join(dir, walSegName(seg)))
	if err != nil {
		return nil, err
	}
	w.f = f
	w.seg.Store(seg)
	syncDir(dir)
	w.wg.Add(1)
	go w.flusher()
	return w, nil
}

// healthy returns the sticky failure, if any. Commit paths check it
// before applying so a broken log stops accepting writes immediately.
func (w *WAL) healthy() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// enqueue hands one framed record to the flusher and returns the channel
// its fsync acknowledgement arrives on.
func (w *WAL) enqueue(ts uint64, rec []byte) (chan error, error) {
	req := &walReq{ts: ts, rec: rec, done: make(chan error, 1)}
	w.mu.Lock()
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return nil, err
	}
	w.queue = append(w.queue, req)
	w.mu.Unlock()
	select {
	case w.signal <- struct{}{}:
	default:
	}
	return req.done, nil
}

// enqueueRotate queues a rotation barrier: the flusher syncs everything
// before it, closes the segment and opens the next. The returned channel
// acks when every record enqueued before the barrier is durable.
func (w *WAL) enqueueRotate() (chan error, error) {
	req := &walReq{rotate: true, done: make(chan error, 1)}
	w.mu.Lock()
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return nil, err
	}
	w.queue = append(w.queue, req)
	w.mu.Unlock()
	select {
	case w.signal <- struct{}{}:
	default:
	}
	return req.done, nil
}

// fail records the first error permanently; all subsequent commits are
// rejected. Applied-but-unpublished versions stay invisible forever (the
// clock never reaches them), which is exactly the recovery contract: an
// unacknowledged commit may not be observed.
func (w *WAL) fail(err error) {
	w.mu.Lock()
	if w.failed == nil {
		w.failed = err
	}
	w.mu.Unlock()
}

// flusher is the single goroutine with access to the segment file.
func (w *WAL) flusher() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stop:
			w.drain()
			return
		case <-w.signal:
			w.drain()
		}
	}
}

// drain flushes queued requests until the queue is empty.
func (w *WAL) drain() {
	for {
		w.mu.Lock()
		batch := w.queue
		w.queue = nil
		w.mu.Unlock()
		if len(batch) == 0 {
			return
		}
		w.flushBatch(batch)
	}
}

// flushBatch writes a run of records, issues one fsync covering them,
// publishes the highest timestamp and acks — then handles any rotation
// barriers interleaved in the batch.
func (w *WAL) flushBatch(batch []*walReq) {
	i := 0
	for i < len(batch) {
		j := i
		for j < len(batch) && !batch[j].rotate {
			j++
		}
		if j > i {
			if err := w.writeRun(batch[i:j]); err != nil {
				w.fail(err)
				for _, req := range batch[i:] {
					req.done <- err
				}
				return
			}
		}
		if j < len(batch) {
			if err := w.rotateSegment(); err != nil {
				w.fail(err)
				for _, req := range batch[j:] {
					req.done <- err
				}
				return
			}
			batch[j].done <- nil
			j++
		}
		i = j
	}
}

// writeRun appends records back to back, syncs, publishes and acks. In
// perCommitSync mode every record gets its own fsync — the naive
// baseline group commit is measured against.
func (w *WAL) writeRun(run []*walReq) error {
	if w.perCommitSync {
		for _, req := range run {
			if _, err := w.f.Write(req.rec); err != nil {
				return err
			}
			w.appends.Add(1)
			w.liveBytes.Add(int64(len(req.rec)))
			if err := w.f.Sync(); err != nil {
				return err
			}
			w.syncs.Add(1)
			w.publish(req.ts)
			req.done <- nil
		}
		w.maybeAutoCheckpoint()
		return nil
	}
	for _, req := range run {
		if _, err := w.f.Write(req.rec); err != nil {
			return err
		}
		w.appends.Add(1)
		w.liveBytes.Add(int64(len(req.rec)))
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs.Add(1)
	w.publish(run[len(run)-1].ts)
	for _, req := range run {
		req.done <- nil
	}
	w.maybeAutoCheckpoint()
	return nil
}

// setAutoCheckpoint installs the auto-checkpoint trigger: fire is called
// (off the flusher goroutine) when the live log crosses limit bytes; a
// non-positive limit disables the trigger.
func (w *WAL) setAutoCheckpoint(limit int64, fire func()) {
	w.mu.Lock()
	w.onCkpt = fire
	w.mu.Unlock()
	w.ckptLimit.Store(limit)
}

// maybeAutoCheckpoint fires the auto-checkpoint once per threshold
// crossing. It runs on the flusher goroutine after a write run, so the
// checkpoint itself must run elsewhere: Checkpoint enqueues a rotation
// barrier and waits for this very flusher to ack it — calling it inline
// would deadlock.
func (w *WAL) maybeAutoCheckpoint() {
	lim := w.ckptLimit.Load()
	if lim <= 0 || w.liveBytes.Load() < lim {
		return
	}
	if !w.ckptArmed.CompareAndSwap(false, true) {
		return // a checkpoint for this crossing is already in flight
	}
	w.mu.Lock()
	fire := w.onCkpt
	w.mu.Unlock()
	if fire == nil {
		w.ckptArmed.Store(false)
		return
	}
	go func() {
		fire()
		// Re-arm only after the checkpoint finished: its rotation reset
		// liveBytes, so the next crossing is a genuinely new one.
		w.ckptArmed.Store(false)
	}()
}

// rotateSegment closes the current segment and opens the next. Records
// written before the barrier were already synced by writeRun.
func (w *WAL) rotateSegment() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs.Add(1)
	if err := w.f.Close(); err != nil {
		return err
	}
	next := w.seg.Load() + 1
	f, err := w.open(filepath.Join(w.dir, walSegName(next)))
	if err != nil {
		return err
	}
	w.f = f
	w.seg.Store(next)
	// Rotation starts a fresh live region: everything before the barrier
	// is in closed segments a checkpoint is about to cover.
	w.liveBytes.Store(0)
	syncDir(w.dir)
	return nil
}

// Segment returns the current segment number.
func (w *WAL) Segment() uint64 { return w.seg.Load() }

// Counters reports appended records and fsyncs issued — the group-commit
// observability pair (syncs ≪ appends under concurrent committers).
func (w *WAL) Counters() (appends, syncs int64) {
	return w.appends.Load(), w.syncs.Load()
}

// Close rejects further commits, flushes the queue and closes the
// segment file.
func (w *WAL) Close() error {
	w.mu.Lock()
	already := w.failed != nil
	if w.failed == nil {
		w.failed = errWALClosed
	}
	w.mu.Unlock()
	close(w.stop)
	w.wg.Wait()
	if already {
		return nil // file state unknown after a failure; leave it
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	w.syncs.Add(1)
	return w.f.Close()
}

// syncDir fsyncs a directory so a freshly created or renamed entry
// survives a crash. Best effort: some filesystems reject directory
// fsync, and the data-file fsyncs still bound the loss window.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
