package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mad/internal/model"
)

// testDB builds a two-type database with one link type.
func testDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	if _, err := db.DefineAtomType("part", model.MustDesc(
		model.AttrDesc{Name: "name", Kind: model.KString, NotNull: true},
		model.AttrDesc{Name: "weight", Kind: model.KFloat},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineAtomType("supplier", model.MustDesc(
		model.AttrDesc{Name: "name", Kind: model.KString, NotNull: true},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineLinkType("supplies", model.LinkDesc{SideA: "supplier", SideB: "part"}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestInsertGetUpdateDelete(t *testing.T) {
	db := testDB(t)
	id, err := db.InsertAtom("part", model.Str("bolt"), model.Float(0.1))
	if err != nil {
		t.Fatal(err)
	}
	a, ok := db.GetAtom("part", id)
	if !ok {
		t.Fatal("inserted atom not found")
	}
	if s, _ := a.Get(0).AsString(); s != "bolt" {
		t.Fatalf("value = %s", a.Get(0))
	}
	if err := db.UpdateAtom("part", id, []model.Value{model.Str("nut"), model.Float(0.2)}); err != nil {
		t.Fatal(err)
	}
	a, _ = db.GetAtom("part", id)
	if s, _ := a.Get(0).AsString(); s != "nut" {
		t.Fatal("update not visible")
	}
	if _, err := db.DeleteAtom("part", id); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.GetAtom("part", id); ok {
		t.Fatal("deleted atom still visible")
	}
	if _, err := db.DeleteAtom("part", id); err == nil {
		t.Fatal("double delete must fail")
	}
}

func TestInsertValidation(t *testing.T) {
	db := testDB(t)
	if _, err := db.InsertAtom("part", model.Int(1), model.Float(0)); err == nil {
		t.Fatal("kind mismatch must fail")
	}
	if _, err := db.InsertAtom("part", model.Null(), model.Float(0)); err == nil {
		t.Fatal("NOT NULL violation must fail")
	}
	if _, err := db.InsertAtom("nosuch", model.Int(1)); err == nil {
		t.Fatal("unknown type must fail")
	}
	// int widens into float attribute
	if _, err := db.InsertAtom("part", model.Str("x"), model.Int(3)); err != nil {
		t.Fatalf("int→float widening rejected: %v", err)
	}
}

func TestLinkSymmetryAndIdempotence(t *testing.T) {
	db := testDB(t)
	s, _ := db.InsertAtom("supplier", model.Str("acme"))
	p, _ := db.InsertAtom("part", model.Str("bolt"), model.Float(1))
	if err := db.Connect("supplies", s, p); err != nil {
		t.Fatal(err)
	}
	if err := db.Connect("supplies", s, p); err != nil {
		t.Fatal("idempotent connect must not fail")
	}
	if n, _ := db.CountLinks("supplies"); n != 1 {
		t.Fatalf("links = %d, want 1", n)
	}
	fwd, err := db.Partners("supplies", s, true)
	if err != nil || len(fwd) != 1 || fwd[0] != p {
		t.Fatalf("forward partners = %v, %v", fwd, err)
	}
	back, err := db.Partners("supplies", p, false)
	if err != nil || len(back) != 1 || back[0] != s {
		t.Fatalf("backward partners = %v, %v", back, err)
	}
	removed, err := db.Disconnect("supplies", s, p)
	if err != nil || !removed {
		t.Fatal("disconnect failed")
	}
	if removed, _ := db.Disconnect("supplies", s, p); removed {
		t.Fatal("double disconnect must report false")
	}
}

func TestConnectValidatesEndpoints(t *testing.T) {
	db := testDB(t)
	s, _ := db.InsertAtom("supplier", model.Str("acme"))
	if err := db.Connect("supplies", s, model.MakeAtomID(99, 99)); err == nil {
		t.Fatal("dangling endpoint must fail")
	}
	if err := db.Connect("nosuch", s, s); err == nil {
		t.Fatal("unknown link type must fail")
	}
}

func TestDeleteCascadesLinks(t *testing.T) {
	db := testDB(t)
	s, _ := db.InsertAtom("supplier", model.Str("acme"))
	var parts []model.AtomID
	for i := 0; i < 5; i++ {
		p, _ := db.InsertAtom("part", model.Str("p"), model.Float(1))
		parts = append(parts, p)
		if err := db.Connect("supplies", s, p); err != nil {
			t.Fatal(err)
		}
	}
	dropped, err := db.DeleteAtom("supplier", s)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 5 {
		t.Fatalf("dropped = %d, want 5", dropped)
	}
	if n, _ := db.CountLinks("supplies"); n != 0 {
		t.Fatal("links must be gone after cascade")
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	_ = parts
}

func TestCardinalityEnforced(t *testing.T) {
	db := NewDatabase()
	if _, err := db.DefineAtomType("a", model.MustDesc(model.AttrDesc{Name: "x", Kind: model.KInt})); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineAtomType("b", model.MustDesc(model.AttrDesc{Name: "y", Kind: model.KInt})); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineLinkType("ab", model.LinkDesc{
		SideA: "a", SideB: "b",
		CardA: model.Cardinality{Max: 2}, // an a-atom may have at most 2 b-partners
	}); err != nil {
		t.Fatal(err)
	}
	a1, _ := db.InsertAtom("a", model.Int(1))
	var bs []model.AtomID
	for i := 0; i < 3; i++ {
		b, _ := db.InsertAtom("b", model.Int(int64(i)))
		bs = append(bs, b)
	}
	if err := db.Connect("ab", a1, bs[0]); err != nil {
		t.Fatal(err)
	}
	if err := db.Connect("ab", a1, bs[1]); err != nil {
		t.Fatal(err)
	}
	if err := db.Connect("ab", a1, bs[2]); err == nil {
		t.Fatal("cardinality 0:2 must reject a third partner")
	}
}

func TestReflexiveLinkType(t *testing.T) {
	db := NewDatabase()
	if _, err := db.DefineAtomType("parts", model.MustDesc(model.AttrDesc{Name: "name", Kind: model.KString})); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineLinkType("composition", model.LinkDesc{SideA: "parts", SideB: "parts"}); err != nil {
		t.Fatal(err)
	}
	x, _ := db.InsertAtom("parts", model.Str("engine"))
	y, _ := db.InsertAtom("parts", model.Str("piston"))
	if err := db.Connect("composition", x, y); err != nil {
		t.Fatal(err)
	}
	// The unsorted-pair reading: <y, x> is the same link.
	if err := db.Connect("composition", y, x); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.CountLinks("composition"); n != 1 {
		t.Fatalf("reflexive duplicate not collapsed: %d links", n)
	}
	ls, _ := db.LinkStore("composition")
	if !ls.Has(x, y) || !ls.Has(y, x) {
		t.Fatal("symmetric Has failed")
	}
	// Sub-component view (fromA) vs super-component view (fromB).
	sub, _ := db.Partners("composition", x, true)
	if len(sub) != 1 || sub[0] != y {
		t.Fatalf("sub view = %v", sub)
	}
	sup, _ := db.Partners("composition", y, false)
	if len(sup) != 1 || sup[0] != x {
		t.Fatalf("super view = %v", sup)
	}
	if removed, err := db.Disconnect("composition", y, x); err != nil || !removed {
		t.Fatal("mirrored disconnect must work")
	}
	if n, _ := db.CountLinks("composition"); n != 0 {
		t.Fatal("link not removed")
	}
}

func TestSecondaryIndex(t *testing.T) {
	db := testDB(t)
	var ids []model.AtomID
	for i := 0; i < 10; i++ {
		name := "even"
		if i%2 == 1 {
			name = "odd"
		}
		id, _ := db.InsertAtom("part", model.Str(name), model.Float(float64(i)))
		ids = append(ids, id)
	}
	if err := db.CreateIndex("part", "name"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("part", "name"); err == nil {
		t.Fatal("duplicate index must fail")
	}
	if err := db.CreateIndex("part", "nosuch"); err == nil {
		t.Fatal("unknown attr must fail")
	}
	got, ok := db.IndexLookup("part", "name", model.Str("even"))
	if !ok || len(got) != 5 {
		t.Fatalf("index lookup = %v, %v", got, ok)
	}
	// Update moves the atom between keys.
	if err := db.UpdateAtom("part", ids[0], []model.Value{model.Str("odd"), model.Float(0)}); err != nil {
		t.Fatal(err)
	}
	got, _ = db.IndexLookup("part", "name", model.Str("odd"))
	if len(got) != 6 {
		t.Fatalf("after update: odd = %d, want 6", len(got))
	}
	// Delete removes the entry.
	if _, err := db.DeleteAtom("part", ids[1]); err != nil {
		t.Fatal(err)
	}
	got, _ = db.IndexLookup("part", "name", model.Str("odd"))
	if len(got) != 5 {
		t.Fatalf("after delete: odd = %d, want 5", len(got))
	}
	if _, ok := db.IndexLookup("part", "weight", model.Float(1)); ok {
		t.Fatal("lookup without index must report !ok")
	}
	if !db.DropIndex("part", "name") {
		t.Fatal("drop index failed")
	}
}

func TestAdoptAtomSharesIdentity(t *testing.T) {
	db := testDB(t)
	id, _ := db.InsertAtom("part", model.Str("bolt"), model.Float(1))
	if _, err := db.DefineAtomType("part2", model.MustDesc(
		model.AttrDesc{Name: "name", Kind: model.KString, NotNull: true},
		model.AttrDesc{Name: "weight", Kind: model.KFloat},
	)); err != nil {
		t.Fatal(err)
	}
	a, _ := db.GetAtom("part", id)
	if err := db.AdoptAtom("part2", a); err != nil {
		t.Fatal(err)
	}
	if err := db.AdoptAtom("part2", a); err == nil {
		t.Fatal("duplicate adopt must fail")
	}
	b, ok := db.GetAtom("part2", id)
	if !ok || b.ID != id {
		t.Fatal("adopted atom must keep its identifier")
	}
	// ResolveAtom finds the native type.
	_, typeName, ok := db.ResolveAtom(id)
	if !ok || typeName != "part" {
		t.Fatalf("ResolveAtom = %q, %v", typeName, ok)
	}
}

func TestScanOrderDeterministic(t *testing.T) {
	db := testDB(t)
	var want []model.AtomID
	for i := 0; i < 20; i++ {
		id, _ := db.InsertAtom("part", model.Str("p"), model.Float(float64(i)))
		want = append(want, id)
	}
	var got []model.AtomID
	if err := db.ScanAtoms("part", func(a model.Atom) bool {
		got = append(got, a.ID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan count = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("scan must preserve insertion order")
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	db := testDB(t)
	before := db.Stats().Snapshot()
	id, _ := db.InsertAtom("part", model.Str("p"), model.Float(1))
	db.GetAtom("part", id)
	diff := db.Stats().Snapshot().Sub(before)
	if diff.AtomsInserted != 1 || diff.AtomsFetched != 1 {
		t.Fatalf("stats diff = %+v", diff)
	}
	db.Stats().Reset()
	if db.Stats().Snapshot().AtomsInserted != 0 {
		t.Fatal("reset failed")
	}
}

// TestRandomMutationsPreserveIntegrity drives random mutation sequences
// and checks the database invariants after each batch (property 3 of
// DESIGN.md).
func TestRandomMutationsPreserveIntegrity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDatabase()
		if _, err := db.DefineAtomType("n", model.MustDesc(model.AttrDesc{Name: "v", Kind: model.KInt})); err != nil {
			return false
		}
		if _, err := db.DefineLinkType("e", model.LinkDesc{SideA: "n", SideB: "n"}); err != nil {
			return false
		}
		var live []model.AtomID
		for op := 0; op < 200; op++ {
			switch r := rng.Intn(10); {
			case r < 4 || len(live) < 2:
				id, err := db.InsertAtom("n", model.Int(int64(op)))
				if err != nil {
					return false
				}
				live = append(live, id)
			case r < 8:
				a := live[rng.Intn(len(live))]
				b := live[rng.Intn(len(live))]
				if a == b {
					continue
				}
				if err := db.Connect("e", a, b); err != nil {
					return false
				}
			default:
				i := rng.Intn(len(live))
				if _, err := db.DeleteAtom("n", live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		return db.CheckIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestContainerSeqAfterAdopt(t *testing.T) {
	// Adopting a native-numbered atom must keep the sequence ahead so
	// fresh inserts do not collide (snapshot-load path).
	db := NewDatabase()
	if _, err := db.DefineAtomType("t", model.MustDesc(model.AttrDesc{Name: "v", Kind: model.KInt})); err != nil {
		t.Fatal(err)
	}
	at, _ := db.Schema().AtomType("t")
	pre := model.NewAtom(model.MakeAtomID(at.Num, 10), model.Int(1))
	if err := db.AdoptAtom("t", pre); err != nil {
		t.Fatal(err)
	}
	id, err := db.InsertAtom("t", model.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if id.Seq() <= 10 {
		t.Fatalf("fresh id %v collides with adopted range", id)
	}
}
