// Package stats implements per-attribute equi-depth histograms over atom
// containers — the distribution statistics the query planner consumes in
// place of the uniform occurrence/distinct-keys assumption. A histogram
// is built by ANALYZE (a full pass over one attribute of one atom-type
// occurrence) and then maintained incrementally as atoms are inserted,
// updated and deleted, so estimates degrade gracefully between rebuilds
// instead of going silently stale.
//
// The histogram is equi-depth with heavy-hitter isolation: the sorted
// non-null values are split into buckets of (approximately) equal depth,
// but a run of equal values is never split across buckets. A value that
// dominates a skewed distribution therefore occupies a bucket of its own
// with Distinct == 1, and equality estimates for it return the true run
// length rather than depth/distinct — exactly the case where the uniform
// assumption picks the wrong access path.
//
// The package depends only on internal/model; internal/storage owns the
// histogram registry and internal/plan turns estimates into plan choices.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mad/internal/model"
)

// DefaultBuckets is the bucket budget used by ANALYZE when the caller
// does not choose one. Equi-depth histograms are robust at small sizes;
// 16 buckets bound the estimation error at ~1/16 of the occurrence for
// range predicates while keeping the per-attribute footprint tiny.
const DefaultBuckets = 16

// Bucket is one equi-depth bucket: the values v with Lower < v ≤ Upper
// (the first bucket includes its lower bound). Count is maintained
// incrementally after the build; Distinct is fixed at build time.
type Bucket struct {
	Upper    model.Value
	Count    int64
	Distinct int64
}

// Histogram is an equi-depth histogram over one attribute of one atom
// type. It is safe for concurrent use: the planner reads estimates while
// the storage layer routes inserts and deletes into buckets.
type Histogram struct {
	mu      sync.RWMutex
	lower   model.Value // minimum non-null value at build time (inclusive)
	buckets []Bucket
	total   int64 // non-null values currently accounted
	nulls   int64
	drift   int64 // incremental mutations since the build
}

// Build constructs an equi-depth histogram from the attribute values of
// one occurrence (nulls are counted separately and excluded from the
// buckets). maxBuckets ≤ 0 selects DefaultBuckets. An occurrence with no
// non-null values yields an empty histogram whose estimates are all zero.
func Build(values []model.Value, maxBuckets int) *Histogram {
	if maxBuckets <= 0 {
		maxBuckets = DefaultBuckets
	}
	h := &Histogram{}
	var vs []model.Value
	for _, v := range values {
		if v.IsNull() {
			h.nulls++
			continue
		}
		vs = append(vs, v)
	}
	if len(vs) == 0 {
		return h
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
	h.lower = vs[0]
	h.total = int64(len(vs))

	depth := (len(vs) + maxBuckets - 1) / maxBuckets
	if depth < 1 {
		depth = 1
	}
	i := 0
	for i < len(vs) {
		start := i
		var distinct int64
		for i < len(vs) {
			// Measure the run of equal values starting at i. A run is never
			// split across buckets, and a run at least one depth long gets a
			// bucket of its own (Distinct == 1), so heavy hitters of skewed
			// distributions stay isolated from their neighbours.
			j := i + 1
			for j < len(vs) && vs[j].Compare(vs[i]) == 0 {
				j++
			}
			if i > start && j-i >= depth {
				break // close before the heavy hitter
			}
			i = j
			distinct++
			if i-start >= depth {
				break
			}
		}
		h.buckets = append(h.buckets, Bucket{
			Upper:    vs[i-1],
			Count:    int64(i - start),
			Distinct: distinct,
		})
	}
	return h
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.buckets)
}

// Total returns the number of non-null values the histogram accounts for,
// including incremental maintenance since the build.
func (h *Histogram) Total() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.total
}

// Nulls returns the number of null values observed.
func (h *Histogram) Nulls() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.nulls
}

// Drift returns how many incremental mutations (inserts, deletes, update
// halves) the histogram has absorbed since it was built — a staleness
// signal for deciding when to re-ANALYZE.
func (h *Histogram) Drift() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.drift
}

// locate returns the index of the bucket whose range contains v, assuming
// v lies within [lower, last.Upper]. Callers hold h.mu.
func (h *Histogram) locate(v model.Value) int {
	return sort.Search(len(h.buckets), func(i int) bool {
		return h.buckets[i].Upper.Compare(v) >= 0
	})
}

// Insert routes a freshly stored value into its bucket, extending the
// boundary buckets when the value falls outside the built range.
func (h *Histogram) Insert(v model.Value) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.drift++
	if v.IsNull() {
		h.nulls++
		return
	}
	if len(h.buckets) == 0 {
		h.lower = v
		h.buckets = append(h.buckets, Bucket{Upper: v, Count: 1, Distinct: 1})
		h.total++
		return
	}
	if v.Compare(h.lower) < 0 {
		h.lower = v
	}
	i := h.locate(v)
	if i == len(h.buckets) {
		// Beyond the last upper bound: stretch the last bucket.
		i--
		h.buckets[i].Upper = v
	}
	h.buckets[i].Count++
	h.total++
}

// Delete removes a value from its bucket (the inverse of Insert). Counts
// never go below zero; deleting a value outside the built range is
// charged to the nearest boundary bucket.
func (h *Histogram) Delete(v model.Value) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.drift++
	if v.IsNull() {
		if h.nulls > 0 {
			h.nulls--
		}
		return
	}
	if len(h.buckets) == 0 {
		return
	}
	i := h.locate(v)
	if i == len(h.buckets) {
		i--
	}
	if h.buckets[i].Count > 0 {
		h.buckets[i].Count--
	}
	if h.total > 0 {
		h.total--
	}
}

// EstimateEq estimates how many atoms carry attribute value v: the
// containing bucket's depth divided by its distinct-value count. Null
// matches nothing (comparison semantics), and values outside the built
// range estimate to zero.
func (h *Histogram) EstimateEq(v model.Value) int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if v.IsNull() || len(h.buckets) == 0 {
		return 0
	}
	if v.Compare(h.lower) < 0 {
		return 0
	}
	i := h.locate(v)
	if i == len(h.buckets) {
		return 0
	}
	b := h.buckets[i]
	if b.Distinct <= 0 {
		return b.Count
	}
	est := b.Count / b.Distinct
	if est < 1 && b.Count > 0 {
		est = 1
	}
	return est
}

// EstimateLess estimates how many atoms carry a value < v (orEq includes
// v itself): full buckets strictly below v, plus an interpolated share of
// the bucket containing v. Numeric buckets interpolate linearly between
// the adjacent bounds; other kinds assume the midpoint.
func (h *Histogram) EstimateLess(v model.Value, orEq bool) int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if v.IsNull() || len(h.buckets) == 0 {
		return 0
	}
	if v.Compare(h.lower) < 0 {
		return 0
	}
	var n int64
	i := h.locate(v)
	if i == len(h.buckets) {
		return h.total
	}
	for j := 0; j < i; j++ {
		n += h.buckets[j].Count
	}
	b := h.buckets[i]
	if v.Compare(b.Upper) == 0 {
		if orEq {
			n += b.Count
		} else {
			// Everything in the bucket except the equality mass of v.
			eq := b.Count
			if b.Distinct > 0 {
				eq = b.Count / b.Distinct
			}
			n += b.Count - eq
		}
		return n
	}
	lo := h.lower
	if i > 0 {
		lo = h.buckets[i-1].Upper
	}
	n += int64(fraction(lo, v, b.Upper) * float64(b.Count))
	return n
}

// EstimateCmp estimates the number of atoms whose value satisfies
// "value op v" for the six comparison operators, as the planner needs for
// range and equality conjuncts.
func (h *Histogram) EstimateCmp(op string, v model.Value) int64 {
	switch op {
	case "=":
		return h.EstimateEq(v)
	case "<>", "!=":
		t := h.Total()
		if e := t - h.EstimateEq(v); e > 0 {
			return e
		}
		return 0
	case "<":
		return h.EstimateLess(v, false)
	case "<=":
		return h.EstimateLess(v, true)
	case ">":
		t := h.Total()
		if e := t - h.EstimateLess(v, true); e > 0 {
			return e
		}
		return 0
	case ">=":
		t := h.Total()
		if e := t - h.EstimateLess(v, false); e > 0 {
			return e
		}
		return 0
	}
	return h.Total() / 2
}

// fraction linearly interpolates v's position within (lo, hi]; non-numeric
// bounds fall back to the midpoint.
func fraction(lo, v, hi model.Value) float64 {
	lf, ok1 := lo.AsFloat()
	vf, ok2 := v.AsFloat()
	hf, ok3 := hi.AsFloat()
	if !ok1 || !ok2 || !ok3 || hf <= lf {
		return 0.5
	}
	f := (vf - lf) / (hf - lf)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// State is the exported image of a histogram — everything needed to
// reconstruct it in another process. Checkpointing serializes the state
// beside the data snapshot so a restarted server plans from the same
// statistics it crashed with instead of a cold (histogram-less) regime.
type State struct {
	Lower   model.Value
	Buckets []Bucket
	Total   int64
	Nulls   int64
	Drift   int64
}

// State captures the histogram's current contents. The bucket slice is a
// copy; mutating it does not affect the live histogram.
func (h *Histogram) State() State {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return State{
		Lower:   h.lower,
		Buckets: append([]Bucket(nil), h.buckets...),
		Total:   h.total,
		Nulls:   h.nulls,
		Drift:   h.drift,
	}
}

// FromState reconstructs a histogram from a captured State — the recovery
// half of State.
func FromState(s State) *Histogram {
	return &Histogram{
		lower:   s.Lower,
		buckets: append([]Bucket(nil), s.Buckets...),
		total:   s.Total,
		nulls:   s.Nulls,
		drift:   s.Drift,
	}
}

// String renders the histogram compactly for SHOW/ANALYZE output:
// bucket count, accounted values, nulls and drift.
func (h *Histogram) String() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "%d bucket(s), %d value(s)", len(h.buckets), h.total)
	if h.nulls > 0 {
		fmt.Fprintf(&b, ", %d null(s)", h.nulls)
	}
	if h.drift > 0 {
		fmt.Fprintf(&b, ", drift %d", h.drift)
	}
	return b.String()
}
