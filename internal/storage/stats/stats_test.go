package stats_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mad/internal/model"
	"mad/internal/storage/stats"
)

// exactCmp is the specification EstimateCmp approximates: count the
// values satisfying the operator.
func exactCmp(vals []model.Value, op string, v model.Value) int64 {
	var n int64
	for _, x := range vals {
		if x.IsNull() || v.IsNull() {
			continue
		}
		c := x.Compare(v)
		ok := false
		switch op {
		case "=":
			ok = c == 0
		case "<>":
			ok = c != 0
		case "<":
			ok = c < 0
		case "<=":
			ok = c <= 0
		case ">":
			ok = c > 0
		case ">=":
			ok = c >= 0
		}
		if ok {
			n++
		}
	}
	return n
}

func TestBuildEquiDepthInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var vals []model.Value
	for i := 0; i < 1000; i++ {
		vals = append(vals, model.Int(int64(rng.Intn(100))))
	}
	vals = append(vals, model.Null(), model.Null())
	h := stats.Build(vals, 16)
	if h.Total() != 1000 {
		t.Fatalf("Total = %d, want 1000", h.Total())
	}
	if h.Nulls() != 2 {
		t.Fatalf("Nulls = %d, want 2", h.Nulls())
	}
	if h.Buckets() < 2 || h.Buckets() > 17 {
		t.Fatalf("Buckets = %d, want a near-equi-depth split", h.Buckets())
	}
}

// TestHeavyHitterIsolated is the core skew property: a value carrying 90%
// of the mass must estimate near its true frequency, not occurrence/
// distinct-keys.
func TestHeavyHitterIsolated(t *testing.T) {
	var vals []model.Value
	for i := 0; i < 900; i++ {
		vals = append(vals, model.Int(0))
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, model.Int(int64(1+i%50)))
	}
	h := stats.Build(vals, 16)
	eq0 := h.EstimateEq(model.Int(0))
	if eq0 < 800 {
		t.Fatalf("EstimateEq(0) = %d, want ≈900 (uniform would say %d)", eq0, 1000/51)
	}
	eq7 := h.EstimateEq(model.Int(7))
	if eq7 > 50 {
		t.Fatalf("EstimateEq(7) = %d, want a small rare-value estimate", eq7)
	}
}

// TestEstimateCmpBounded checks the property that every range estimate is
// within one bucket's depth of the exact answer (for in-range operands),
// over random integer distributions.
func TestEstimateCmpBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(800)
		vals := make([]model.Value, n)
		for i := range vals {
			// Mildly skewed: half the draws collapse onto 3 values.
			if rng.Intn(2) == 0 {
				vals[i] = model.Int(int64(rng.Intn(3)))
			} else {
				vals[i] = model.Int(int64(rng.Intn(200)))
			}
		}
		h := stats.Build(vals, 16)
		slack := int64(n)/16 + int64(n)/8 + 2 // one bucket + heavy-hitter rounding
		for _, op := range []string{"<", "<=", ">", ">=", "<>"} {
			v := model.Int(int64(rng.Intn(200)))
			got := h.EstimateCmp(op, v)
			want := exactCmp(vals, op, v)
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			if diff > slack {
				t.Logf("seed %d: %s %s: est %d, exact %d, slack %d", seed, op, v, got, want, slack)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalMaintenance checks Insert/Delete keep totals and
// equality estimates coherent, including out-of-range growth.
func TestIncrementalMaintenance(t *testing.T) {
	var vals []model.Value
	for i := 0; i < 100; i++ {
		vals = append(vals, model.Int(int64(i)))
	}
	h := stats.Build(vals, 8)
	for i := 0; i < 50; i++ {
		h.Insert(model.Int(1000)) // beyond the built range
	}
	if h.Total() != 150 {
		t.Fatalf("Total after inserts = %d, want 150", h.Total())
	}
	if h.Drift() != 50 {
		t.Fatalf("Drift = %d, want 50", h.Drift())
	}
	if est := h.EstimateCmp(">", model.Int(500)); est == 0 {
		t.Fatal("out-of-range inserts must be visible to range estimates")
	}
	for i := 0; i < 150; i++ {
		h.Delete(model.Int(int64(i % 100)))
	}
	if h.Total() != 0 {
		t.Fatalf("Total after deletes = %d, want 0", h.Total())
	}
	// Counts clamp at zero even when deletes mis-target buckets.
	h.Delete(model.Int(3))
	if h.Total() != 0 {
		t.Fatalf("Total went negative: %d", h.Total())
	}
}

func TestEmptyAndNullOnly(t *testing.T) {
	h := stats.Build(nil, 16)
	if h.EstimateEq(model.Int(1)) != 0 || h.EstimateCmp("<", model.Int(1)) != 0 {
		t.Fatal("empty histogram must estimate zero")
	}
	h = stats.Build([]model.Value{model.Null(), model.Null()}, 16)
	if h.Total() != 0 || h.Nulls() != 2 {
		t.Fatalf("null-only: total %d nulls %d", h.Total(), h.Nulls())
	}
	if h.EstimateEq(model.Null()) != 0 {
		t.Fatal("null equals nothing under comparison semantics")
	}
	// First insert into an empty histogram seeds a bucket.
	h.Insert(model.Str("x"))
	if h.EstimateEq(model.Str("x")) != 1 {
		t.Fatalf("EstimateEq after seeding insert = %d, want 1", h.EstimateEq(model.Str("x")))
	}
}

func TestStringValues(t *testing.T) {
	var vals []model.Value
	for i := 0; i < 300; i++ {
		vals = append(vals, model.Str("common"))
	}
	for _, s := range []string{"a", "b", "zebra"} {
		vals = append(vals, model.Str(s))
	}
	h := stats.Build(vals, 8)
	if est := h.EstimateEq(model.Str("common")); est < 200 {
		t.Fatalf("EstimateEq(common) = %d, want ≈300", est)
	}
	if est := h.EstimateEq(model.Str("zebra")); est > 100 {
		t.Fatalf("EstimateEq(zebra) = %d, want small", est)
	}
}
