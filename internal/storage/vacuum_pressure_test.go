package storage

import (
	"testing"
	"time"

	"mad/internal/model"
)

// TestVacuumChainPressureStats pins a snapshot, stacks updates on one
// atom and asserts Vacuum reports the residual chain pressure: the
// pinned pass sees the long chain, the unpinned one collapses it.
func TestVacuumChainPressureStats(t *testing.T) {
	db := NewDatabase()
	d := model.MustDesc(model.AttrDesc{Name: "n", Kind: model.KInt})
	if _, err := db.DefineAtomType("t", d); err != nil {
		t.Fatal(err)
	}
	ids := make([]model.AtomID, 4)
	for i := range ids {
		id, err := db.InsertAtom("t", model.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	// A pinned snapshot holds the horizon; 20 updates stack a 21-node
	// chain on ids[0] that vacuum must keep — and report.
	pin := db.Snapshot()
	for i := 0; i < 20; i++ {
		if err := db.UpdateAtom("t", ids[0], []model.Value{model.Int(int64(100 + i))}); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Vacuum()
	if st.Reclaimed != 0 {
		t.Fatalf("pinned vacuum reclaimed %d", st.Reclaimed)
	}
	if st.Chains != 4 || st.MaxChain != 21 {
		t.Fatalf("pressure under pin = %+v, want 4 chains, max 21", st)
	}
	if want := 24.0 / 4; st.MeanChain != want {
		t.Fatalf("mean chain = %v, want %v", st.MeanChain, want)
	}

	// Unpinned, the chain collapses and the pressure drains to 1.
	pin.Close()
	st = db.Vacuum()
	if st.Reclaimed != 20 {
		t.Fatalf("unpinned vacuum reclaimed %d, want 20", st.Reclaimed)
	}
	if st.Chains != 4 || st.MaxChain != 1 || st.MeanChain != 1.0 {
		t.Fatalf("pressure after collapse = %+v, want 4×1", st)
	}
}

// TestNextVacuumInterval checks the adaptive-cadence policy: base under
// light pressure, halved past the pressure marks, quartered past double
// the marks, floored at a millisecond.
func TestNextVacuumInterval(t *testing.T) {
	base := time.Second
	cases := []struct {
		name string
		st   VacuumStats
		want time.Duration
	}{
		{"idle", VacuumStats{}, base},
		{"light", VacuumStats{MeanChain: 1.2, MaxChain: 3}, base},
		{"mean-pressure", VacuumStats{MeanChain: chainPressureMean, MaxChain: 2}, base / 2},
		{"max-pressure", VacuumStats{MeanChain: 1.0, MaxChain: chainPressureMax}, base / 2},
		{"heavy-mean", VacuumStats{MeanChain: 2 * chainPressureMean}, base / 4},
		{"heavy-max", VacuumStats{MaxChain: 2 * chainPressureMax}, base / 4},
	}
	for _, c := range cases {
		if got := nextVacuumInterval(base, c.st); got != c.want {
			t.Errorf("%s: interval = %v, want %v", c.name, got, c.want)
		}
	}
	// The floor keeps a pathological pressure from spinning.
	if got := nextVacuumInterval(2*time.Millisecond, VacuumStats{MeanChain: 100}); got != time.Millisecond {
		t.Errorf("floor: %v", got)
	}
}
