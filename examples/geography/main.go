// Geography: the paper's running example end to end — the Fig. 1 Brazil
// database, the two Fig. 2 molecule types, the Chapter-4 MQL queries, and
// the algebra pipeline (Σ over α with propagation) they translate into.
package main

import (
	"fmt"
	"log"

	"mad"
	"mad/internal/expr"
	"mad/internal/geo"
)

func main() {
	sample, err := geo.BuildSample()
	if err != nil {
		log.Fatal(err)
	}
	db := sample.DB
	sess := mad.NewSession(db)

	// --- Chapter 4, query 1: the molecule-type definition in FROM. ---
	fmt.Println("Q1: SELECT ALL FROM mt_state(state-area-edge-point)")
	res, err := sess.Exec(`SELECT ALL FROM mt_state(state-area-edge-point);`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("→ %d state molecules; showing Minas Gerais:\n", len(res.Set))
	fmt.Print(res.Set[0].Format(db))

	// --- Chapter 4, query 2: symmetric link use. ---
	fmt.Println("\nQ2: SELECT ALL FROM point-edge-(area-state, net-river) WHERE point.name = 'pn'")
	res, err = sess.Exec(`SELECT ALL FROM point-edge-(area-state, net-river) WHERE point.name = 'pn';`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render(db))

	// --- The same restriction as an explicit algebra pipeline. ---
	fmt.Println("\nalgebra: Σ[point.name='pn'](α[point-neighborhood, ...](...)) with trace")
	pn, err := mad.Define(db, "point-neighborhood",
		[]string{"point", "edge", "area", "state", "net", "river"},
		[]mad.DirectedLink{
			{Link: "edge-point", From: "point", To: "edge"},
			{Link: "area-edge", From: "edge", To: "area"},
			{Link: "state-area", From: "area", To: "state"},
			{Link: "net-edge", From: "edge", To: "net"},
			{Link: "river-net", From: "net", To: "river"},
		})
	if err != nil {
		log.Fatal(err)
	}
	trace := &mad.OpTrace{}
	sigma, err := mad.Restrict(pn, expr.Cmp{Op: expr.EQ,
		L: expr.Attr{Type: "point", Name: "name"},
		R: expr.Lit(mad.Str("pn"))}, "pn_hood", trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(trace.String())
	set, err := sigma.Derive()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result molecule type %q over the enlarged database: %d molecule(s)\n",
		sigma.Name(), len(set))

	// --- Shared subobjects across the state molecules. ---
	mtState, err := mad.Define(db, "mt_state_shared",
		[]string{"state", "area", "edge", "point"},
		[]mad.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		})
	if err != nil {
		log.Fatal(err)
	}
	states, err := mtState.Derive()
	if err != nil {
		log.Fatal(err)
	}
	shared := states.SharedAtoms()
	fmt.Printf("\nshared subobjects: %d atoms belong to ≥2 state molecules ", len(shared))
	fmt.Printf("(%d component slots vs %d distinct atoms)\n", states.TotalAtoms(), states.DistinctAtoms())
	fmt.Println("the river Parana shares its course edges with the borders of MG, SP and PR —")
	fmt.Println("exactly the sharing Fig. 1 and Fig. 2 of the paper illustrate.")
}
