// Quickstart: define a schema, load atoms and links, and query molecules
// through MQL — the five-minute tour of the MAD model.
package main

import (
	"fmt"
	"log"

	"mad"
)

func main() {
	db := mad.NewDatabase()
	sess := mad.NewSession(db)

	// Schema: two application object types over one shared substructure.
	// Links replace foreign keys; they are symmetric and typed.
	if _, err := sess.ExecScript(`
CREATE ATOM TYPE author (name STRING NOT NULL);
CREATE ATOM TYPE paper  (title STRING NOT NULL, year INT);
CREATE ATOM TYPE venue  (name STRING NOT NULL);
CREATE LINK TYPE wrote       BETWEEN author AND paper;
CREATE LINK TYPE appeared_in BETWEEN paper AND venue;

INSERT INTO author VALUES ('Mitschang');
INSERT INTO author VALUES ('Härder');
INSERT INTO paper  VALUES ('Extending the Relational Algebra to Capture Complex Objects', 1989);
INSERT INTO paper  VALUES ('PRIMA - A DBMS Prototype Supporting Engineering Applications', 1987);
INSERT INTO venue  VALUES ('VLDB');

CONNECT author WHERE name = 'Mitschang' TO paper WHERE year = 1989 VIA wrote;
CONNECT author WHERE name = 'Mitschang' TO paper WHERE year = 1987 VIA wrote;
CONNECT author WHERE name = 'Härder'    TO paper WHERE year = 1987 VIA wrote;
CONNECT paper TO venue VIA appeared_in;
`); err != nil {
		log.Fatal(err)
	}

	// A molecule type is defined in the query, not the schema: each
	// author molecule contains the author, their papers and the venues —
	// and the 1987 paper is SHARED between the two author molecules.
	res, err := sess.Exec(`SELECT ALL FROM author-[wrote]-paper-[appeared_in]-venue;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render(db))

	// Restriction works on any component of the molecule.
	res, err = sess.Exec(`
SELECT author, paper.title
FROM author-[wrote]-paper-[appeared_in]-venue
WHERE venue.name = 'VLDB' AND paper.year < 1989;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nauthors with a VLDB paper before 1989:")
	fmt.Print(res.Render(db))

	// The same database yields a completely different complex object —
	// dynamic object definition (no schema change).
	res, err = sess.Exec(`SELECT ALL FROM paper-(author, venue) WHERE paper.year = 1987;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe 1987 paper as a molecule rooted at paper:")
	fmt.Print(res.Render(db))
}
