// Bill of material: the paper's reflexive-link example — one atom type
// "parts" with one reflexive link type "composition", queried in both the
// sub-component view (parts explosion) and the super-component view
// (where-used), plus depth-bounded recursion (Chapter 5 / [Schö89]).
package main

import (
	"fmt"
	"log"

	"mad"
)

func main() {
	db := mad.NewDatabase()
	sess := mad.NewSession(db)

	if _, err := sess.ExecScript(`
CREATE ATOM TYPE parts (name STRING NOT NULL, weight FLOAT);
CREATE LINK TYPE composition BETWEEN parts AND parts;

INSERT INTO parts VALUES
  ('car', 1200.0), ('engine', 180.0), ('chassis', 300.0),
  ('piston', 2.0), ('crankshaft', 20.0), ('bolt', 0.05);

CONNECT parts WHERE name = 'car'    TO parts WHERE name = 'engine'     VIA composition;
CONNECT parts WHERE name = 'car'    TO parts WHERE name = 'chassis'    VIA composition;
CONNECT parts WHERE name = 'engine' TO parts WHERE name = 'piston'     VIA composition;
CONNECT parts WHERE name = 'engine' TO parts WHERE name = 'crankshaft' VIA composition;
CONNECT parts WHERE name = 'piston'  TO parts WHERE name = 'bolt' VIA composition;
CONNECT parts WHERE name = 'chassis' TO parts WHERE name = 'bolt' VIA composition;
`); err != nil {
		log.Fatal(err)
	}
	// Note the shared subobject: 'bolt' is a sub-component of both the
	// piston and the chassis — the composition graph is a DAG, not a tree.

	fmt.Println("parts explosion of 'car' (sub-component view):")
	res, err := sess.Exec(`SELECT ALL FROM RECURSIVE parts VIA composition WHERE name = 'car';`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render(db))

	fmt.Println("\nwhere-used of 'bolt' (super-component view, same link type):")
	res, err = sess.Exec(`SELECT ALL FROM RECURSIVE parts VIA composition UP WHERE name = 'bolt';`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render(db))

	fmt.Println("\ndirect components only (DEPTH 1):")
	res, err = sess.Exec(`SELECT ALL FROM RECURSIVE parts VIA composition DEPTH 1 WHERE name = 'car';`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render(db))

	// The programmatic API exposes the closure directly.
	rt, err := mad.DefineRecursive(db, "explosion", "parts", "composition", false, 0)
	if err != nil {
		log.Fatal(err)
	}
	all, err := rt.Derive()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nclosure sizes per root part:")
	for _, m := range all {
		a, _ := db.GetAtom("parts", m.Root)
		fmt.Printf("  %-12s %d part(s), depth %d\n", a.Get(0), m.Size(), m.Depth())
	}
}
