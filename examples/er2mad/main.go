// ER-to-MAD: the Fig. 1 mapping comparison — an ER diagram maps one-to-one
// onto a MAD schema (entity type → atom type, relationship type → link
// type), while the relational mapping needs auxiliary relations for n:m
// relationship types and foreign keys for the rest.
package main

import (
	"fmt"
	"log"

	"mad/internal/er"
	"mad/internal/model"
)

func main() {
	// A compact design-application diagram: modules share cells, cells
	// share layout shapes — the n:m sharing typical of VLSI libraries the
	// paper's introduction motivates.
	diagram := &er.Diagram{
		Entities: []er.EntityType{
			{Name: "module", Attrs: []model.AttrDesc{{Name: "name", Kind: model.KString, NotNull: true}}},
			{Name: "cell", Attrs: []model.AttrDesc{{Name: "name", Kind: model.KString, NotNull: true}}},
			{Name: "shape", Attrs: []model.AttrDesc{{Name: "layer", Kind: model.KInt}}},
			{Name: "designer", Attrs: []model.AttrDesc{{Name: "name", Kind: model.KString, NotNull: true}}},
		},
		Relationships: []er.RelationshipType{
			{Name: "uses-cell", Left: "module", Right: "cell", Card: er.ManyToMany},
			{Name: "has-shape", Left: "cell", Right: "shape", Card: er.ManyToMany},
			{Name: "owned-by", Left: "designer", Right: "module", Card: er.OneToMany},
		},
	}

	madDB, madStats, err := diagram.ToMAD()
	if err != nil {
		log.Fatal(err)
	}
	relDB, relStats, err := diagram.ToRelational()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ER diagram: %d entity types, %d relationship types\n\n",
		len(diagram.Entities), len(diagram.Relationships))

	fmt.Println("ER → MAD (one-to-one, no auxiliary structures):")
	fmt.Print(madDB.Schema().Render())
	fmt.Printf("=> %d atom types, %d link types, %d foreign keys\n\n",
		madStats.Containers, madStats.RelationshipCarriers, madStats.ForeignKeys)

	fmt.Println("ER → relational (auxiliary relations + foreign keys):")
	for _, name := range relDB.Names() {
		r, _ := relDB.Rel(name)
		fmt.Printf("RELATION %s(%v);\n", name, r.Schema.Names())
	}
	fmt.Printf("=> %d relations + %d auxiliary relations, %d foreign keys\n\n",
		relStats.Containers, relStats.RelationshipCarriers, relStats.ForeignKeys)

	// Use the MAD schema right away: populate and derive a module
	// molecule, with a shared cell.
	mustInsert := func(typ string, vals ...model.Value) model.AtomID {
		id, err := madDB.InsertAtom(typ, vals...)
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	m1 := mustInsert("module", model.Str("alu"))
	m2 := mustInsert("module", model.Str("fpu"))
	shared := mustInsert("cell", model.Str("full-adder"))
	priv := mustInsert("cell", model.Str("rounder"))
	for _, c := range []struct {
		m, c model.AtomID
	}{{m1, shared}, {m2, shared}, {m2, priv}} {
		if err := madDB.Connect("uses-cell", c.m, c.c); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("both modules share the 'full-adder' cell — one atom, two molecules:")
	a1, _ := madDB.Partners("uses-cell", m1, true)
	a2, _ := madDB.Partners("uses-cell", m2, true)
	fmt.Printf("  alu cells: %v\n  fpu cells: %v\n", a1, a2)
}
