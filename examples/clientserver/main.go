// Client/server: PRIMA as a server process — a MAD database served over
// TCP with per-connection MQL sessions, exercised by two concurrent
// clients whose dynamically defined molecule types stay session-private.
package main

import (
	"fmt"
	"log"

	"mad/internal/geo"
	"mad/internal/server"
)

func main() {
	sample, err := geo.BuildSample()
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(sample.DB)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	fmt.Printf("primad serving the Fig. 1 database on %s\n\n", addr)

	alice, err := server.Dial(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	bob, err := server.Dial(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()

	// Alice defines a named molecule type — visible only in her session.
	out, err := alice.Exec("SELECT ALL FROM mt_state(state-area-edge-point) WHERE state.hectare > 500;")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice: states over 500k hectares:")
	fmt.Println(firstLines(out, 6))

	// Bob runs the symmetric point-neighborhood query concurrently.
	out, err = bob.Exec("SELECT ALL FROM point-edge-(area-state, net-river) WHERE point.name = 'pn';")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bob: neighborhood of point pn:")
	fmt.Println(firstLines(out, 8))

	// Bob cannot see Alice's named type (sessions are isolated).
	if _, err := bob.Exec("SELECT ALL FROM mt_state;"); err != nil {
		fmt.Printf("bob: SELECT ALL FROM mt_state → %v (sessions are isolated)\n", err)
	}

	// Alice's named type persists within her session.
	out, err = alice.Exec("SELECT state.name FROM mt_state WHERE state.abbrev = 'BA';")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nalice again, reusing her named type:")
	fmt.Println(firstLines(out, 3))

	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("server stopped cleanly")
}

// firstLines trims long renderings for display.
func firstLines(s string, n int) string {
	out := ""
	count := 0
	for _, line := range splitLines(s) {
		out += line + "\n"
		count++
		if count == n {
			out += "  ...\n"
			break
		}
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
