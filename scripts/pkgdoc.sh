#!/bin/sh
# pkgdoc.sh — CI docs gate: every internal package (and the root package)
# must carry a godoc package comment ("// Package <name> ..." above the
# package clause in some non-test file), so `go doc` output stays useful.
set -eu
cd "$(dirname "$0")/.."

fail=0
for pkg in $(go list . ./internal/...); do
	dir=$(go list -f '{{.Dir}}' "$pkg")
	name=$(go list -f '{{.Name}}' "$pkg")
	found=0
	for f in "$dir"/*.go; do
		case "$f" in
		*_test.go) continue ;;
		esac
		if grep -q "^// Package $name " "$f"; then
			found=1
			break
		fi
	done
	if [ "$found" -eq 0 ]; then
		echo "missing package comment: $pkg" >&2
		fail=1
	fi
done
exit $fail
