#!/bin/sh
# stress.sh — hammers the MVCC mixed read/write path and the durability
# path: the headline snapshot-isolation stress tests (concurrent
# transaction writers vs streaming Plan.Stream readers with background
# vacuum, the storage property tests, and the wire-level server
# transaction workload) plus the WAL kill-and-recover suite (a fault is
# injected at every write and fsync of the log, then the directory is
# recovered and compared against an in-memory twin) run repeatedly under
# the race detector. Gating: any torn molecule, version-tear,
# vacuum-reclaimed-live-version, non-prefix recovery or data race fails.
#
# Usage: scripts/stress.sh
#   COUNT    repetitions per test binary (default 5)
#   TIMEOUT  go test timeout (default 10m)
set -eu
cd "$(dirname "$0")/.."

count="${COUNT:-5}"
timeout="${TIMEOUT:-10m}"

echo "== storage: transaction + snapshot/vacuum property tests (race, -count=$count)"
go test -race -count="$count" -timeout "$timeout" \
	-run 'TestTxn|TestVacuum|TestSnapshot' ./internal/storage/

echo "== storage: WAL kill-and-recover crash injection (race, -count=$count)"
go test -race -count="$count" -timeout "$timeout" \
	-run 'TestCrashInjection|TestTornTail|TestRecoveryRoundTrip|TestGroupCommit|TestCheckpoint|TestMidCheckpoint' ./internal/storage/

echo "== plan: writers vs streaming readers stress (race, -count=$count)"
go test -race -count="$count" -timeout "$timeout" \
	-run 'TestMVCCStress' ./internal/plan/

echo "== server: concurrent transactions over the wire (race, -count=$count)"
go test -race -count="$count" -timeout "$timeout" \
	-run 'TestServerConcurrentTxn|TestServerTxn|TestServerDropped' ./internal/server/

echo "stress.sh: all MVCC stress suites passed"
