#!/bin/sh
# bench.sh — perf-trajectory tooling: runs every repository benchmark with
# -benchmem and emits a machine-readable JSON file (one record per
# benchmark: ns/op, B/op, allocs/op plus any custom metrics the benchmark
# reports — peak-B/op, commits/s, appends/fsync, atom-fetches/op,
# ns-to-first-molecule) so CI can archive the trajectory per commit.
# Non-gating: numbers are for trend lines, not pass/fail (the P16/P17
# work-ratio gates live inside the benchmarks themselves and fail the
# run outright).
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME  go test -benchtime value (default 1x: smoke-level noise,
#              raise to e.g. 100x or 1s for trend-quality numbers)
#   BENCH      -bench pattern (default ".")
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH.json}"
benchtime="${BENCHTIME:-1x}"
pattern="${BENCH:-.}"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem ./... >"$raw"

awk -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v goversion="$(go env GOVERSION)" '
BEGIN {
	printf "{\n  \"commit\": \"%s\",\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [", commit, date, goversion
	n = 0
}
/^Benchmark/ {
	name = $1; iters = $2
	ns = ""; bytes = ""; allocs = ""; peak = ""; cps = ""; apf = ""; af = ""; fm = ""
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
		if ($(i + 1) == "peak-B/op") peak = $i
		if ($(i + 1) == "commits/s") cps = $i
		if ($(i + 1) == "appends/fsync") apf = $i
		if ($(i + 1) == "atom-fetches/op") af = $i
		if ($(i + 1) == "ns-to-first-molecule") fm = $i
	}
	if (ns == "") next
	if (n++) printf ","
	printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
	if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	if (peak != "") printf ", \"peak_bytes_per_op\": %s", peak
	if (cps != "") printf ", \"commits_per_s\": %s", cps
	if (apf != "") printf ", \"appends_per_fsync\": %s", apf
	if (af != "") printf ", \"atom_fetches_per_op\": %s", af
	if (fm != "") printf ", \"ns_to_first_molecule\": %s", fm
	printf "}"
}
END { printf "\n  ]\n}\n" }
' "$raw" >"$out"

count=$(grep -c '"name"' "$out" || true)
echo "bench.sh: wrote $count benchmark record(s) to $out"
